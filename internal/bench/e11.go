package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
)

// E11 is the contention suite behind the sharded-admission work
// (DESIGN.md §11): how does full-computation throughput scale with
// GOMAXPROCS when footprints are disjoint (the lock-free CAS fast path),
// zipfian-overlapping (a mix of fast and ordered-lock slow claims), and
// hot-key (every spawn conflicts on one shared microprotocol)? The same
// fixture backs the root-level Contention* benchmarks.

// spawnStatser is implemented by the sharded controllers: fast/slow
// admission-path counts (cc's SpawnStats).
type spawnStatser interface {
	SpawnStats() (fast, slow uint64)
}

// zipfLanes is the microprotocol-set size of the zipfian shape, and
// zipfTable the length of the per-worker pre-drawn lane sequence (drawn
// outside the timed loop, cycled inside it).
const (
	zipfLanes = 16
	zipfTable = 1024
)

// ContentionWorkload is one (controller, shape) contention fixture.
// Shapes:
//
//   - disjoint: worker i spawns computations over its private
//     microprotocol only — zero conflicts, the pure fast-path regime.
//   - zipf: every computation uses one of 16 single-microprotocol specs,
//     drawn zipfian, so a few hot lanes see most of the traffic and the
//     rest almost none — fast and slow claims mix.
//   - hotkey: worker i's spec is {own_i, hot}; its handler chain visits
//     own_i then hot, so every spawn conflicts on the hot slot and the
//     algorithms serialize there — the honest worst case.
type ContentionWorkload struct {
	Ctrl  core.Controller
	stack *core.Stack
	shape string
	specs []*core.Spec
	evs   []*core.EventType
	seqs  [][]int // per worker: pre-drawn spec index sequence (zipf)
}

// NewContentionWorkload builds the fixture for v with `workers` worker
// lanes.
func NewContentionWorkload(v Variant, shape string, workers int) *ContentionWorkload {
	w := &ContentionWorkload{Ctrl: v.New(), shape: shape}
	w.stack = core.NewStack(w.Ctrl)

	specFor := func(kind string, mps ...*core.Microprotocol) *core.Spec {
		if kind == "bound" {
			bounds := map[*core.Microprotocol]int{}
			for _, mp := range mps {
				bounds[mp] = 1
			}
			return core.AccessBound(bounds)
		}
		return core.Access(mps...)
	}

	newLane := func(name string) (*core.Microprotocol, *core.Handler, *core.EventType) {
		mp := core.NewMicroprotocol(name)
		h := mp.AddHandler("h", func(*core.Context, core.Message) error { return nil })
		w.stack.Register(mp)
		et := core.NewEventType("e-" + name)
		w.stack.Bind(et, h)
		return mp, h, et
	}

	switch shape {
	case "zipf":
		for i := 0; i < zipfLanes; i++ {
			mp, _, et := newLane(fmt.Sprintf("z%d", i))
			w.specs = append(w.specs, specFor(v.Kind, mp))
			w.evs = append(w.evs, et)
		}
		w.seqs = make([][]int, workers)
		for i := range w.seqs {
			z := rand.NewZipf(rand.New(rand.NewSource(int64(i)+1)), 1.2, 1, zipfLanes-1)
			seq := make([]int, zipfTable)
			for j := range seq {
				seq[j] = int(z.Uint64())
			}
			w.seqs[i] = seq
		}
	case "hotkey":
		hot := core.NewMicroprotocol("hot")
		hotH := hot.AddHandler("h", func(*core.Context, core.Message) error { return nil })
		w.stack.Register(hot)
		hotEv := core.NewEventType("e-hot")
		w.stack.Bind(hotEv, hotH)
		for i := 0; i < workers; i++ {
			mp := core.NewMicroprotocol(fmt.Sprintf("own%d", i))
			h := mp.AddHandler("h", func(ctx *core.Context, msg core.Message) error {
				return ctx.Trigger(hotEv, msg)
			})
			w.stack.Register(mp)
			et := core.NewEventType(fmt.Sprintf("e-own%d", i))
			w.stack.Bind(et, h)
			w.specs = append(w.specs, specFor(v.Kind, mp, hot))
			w.evs = append(w.evs, et)
		}
	default: // disjoint
		for i := 0; i < workers; i++ {
			mp, _, et := newLane(fmt.Sprintf("d%d", i))
			w.specs = append(w.specs, specFor(v.Kind, mp))
			w.evs = append(w.evs, et)
		}
	}
	return w
}

// RunWorker executes ops computations as worker i.
func (w *ContentionWorkload) RunWorker(i, ops int) error {
	switch w.shape {
	case "zipf":
		seq := w.seqs[i]
		for n := 0; n < ops; n++ {
			lane := seq[n%len(seq)]
			if err := w.stack.External(w.specs[lane], w.evs[lane], nil); err != nil {
				return err
			}
		}
	default:
		spec, ev := w.specs[i], w.evs[i]
		for n := 0; n < ops; n++ {
			if err := w.stack.External(spec, ev, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run executes opsPerWorker computations on each of `workers` goroutines
// and returns the aggregate throughput in computations per second.
func (w *ContentionWorkload) Run(workers, opsPerWorker int) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.RunWorker(i, opsPerWorker)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(workers*opsPerWorker) / elapsed.Seconds(), nil
}

// E11Contention sweeps the three contention shapes over the given
// GOMAXPROCS values. Each table point builds a fresh fixture (fresh
// controller, fresh version state), runs `workers` goroutines ×
// opsPerWorker computations, and reports aggregate throughput; the
// scale column is the last point over the first, and fast% is the
// fraction of spawns the sharded controllers admitted on the lock-free
// CAS path at the highest GOMAXPROCS point (— for controllers without
// an admission fast path).
func E11Contention(cpus []int, workers, opsPerWorker int) *Table {
	t := &Table{
		ID: "E11",
		Title: fmt.Sprintf("contention scaling, %d workers × %d computations/point, host CPUs=%d",
			workers, opsPerWorker, runtime.NumCPU()),
	}
	t.Header = []string{"workload/controller"}
	for _, c := range cpus {
		t.Header = append(t.Header, fmt.Sprintf("P=%d (ops/s)", c))
	}
	t.Header = append(t.Header, "scale", "fast%")

	variants := []string{"none", "serial", "vca-basic", "vca-bound", "vca-rw", "tso"}
	for _, shape := range []string{"disjoint", "zipf", "hotkey"} {
		for _, name := range variants {
			v, ok := VariantByName(name)
			if !ok {
				panic("unknown variant " + name)
			}
			row := []string{shape + "/" + name}
			var first, last float64
			fastCol := "—"
			for _, c := range cpus {
				prev := runtime.GOMAXPROCS(c)
				w := NewContentionWorkload(v, shape, workers)
				tput, err := w.Run(workers, opsPerWorker)
				runtime.GOMAXPROCS(prev)
				if err != nil {
					panic(fmt.Sprintf("E11 %s/%s: %v", shape, name, err))
				}
				if first == 0 {
					first = tput
				}
				last = tput
				row = append(row, fmt.Sprintf("%.0f", tput))
				if ss, ok := w.Ctrl.(spawnStatser); ok {
					fast, slow := ss.SpawnStats()
					if fast+slow > 0 {
						fastCol = fmt.Sprintf("%.0f%%", 100*float64(fast)/float64(fast+slow))
					}
				}
			}
			row = append(row, fmt.Sprintf("%.2fx", last/first), fastCol)
			t.AddRow(row...)
		}
	}
	t.Note("P is GOMAXPROCS; on a host with fewer physical CPUs the sweep measures oversubscription, not hardware parallelism")
	t.Note("expected: disjoint VCA* spawns stay ~100%% on the CAS fast path and scale with P up to the hardware ceiling;")
	t.Note("hotkey conflicts on every spawn (0%% fast), so all isolating controllers serialize there by design")
	return t
}
