package bench

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

// Pipeline is the E5 fixture: a 3-stage protocol pipeline with
// asynchronous stage handoff, where every computation visits every stage
// exactly once. It isolates the effect the paper claims for the optimised
// variants (§4–§5): VCAbound releases a stage when its declared visit
// count is exhausted, VCAroute when the stage becomes unreachable — both
// enabling pipelining that VCAbasic's hold-until-complete forbids.
//
// The ablation knobs: over-declared bounds (a bound of 2 or 8 when the
// real visit count is 1 — the bound is never exhausted, so rule 4's early
// release never fires) and an imprecise routing graph (a back edge from
// the last to the first stage keeps every stage reachable — rule 4(b)
// never fires).
type Pipeline struct {
	stack  *core.Stack
	stages []*core.Microprotocol
	hs     []*core.Handler
	evs    []*core.EventType
	spec   *core.Spec
}

// PipelineConfig selects the E5 ablation point.
type PipelineConfig struct {
	Name      string
	New       func() core.Controller
	Kind      string // "basic" | "bound" | "route"
	Bound     int    // declared visits per stage (bound kind)
	BackEdge  bool   // add emit→parse to the routing graph (route kind)
	StageWork time.Duration
}

// PipelineConfigs returns the E5 ablation grid.
func PipelineConfigs(stageWork time.Duration) []PipelineConfig {
	return []PipelineConfig{
		{Name: "serial", New: func() core.Controller { return cc.NewSerial() }, Kind: "basic", StageWork: stageWork},
		{Name: "vca-basic", New: func() core.Controller { return cc.NewVCABasic() }, Kind: "basic", StageWork: stageWork},
		{Name: "vca-bound exact (1)", New: func() core.Controller { return cc.NewVCABound() }, Kind: "bound", Bound: 1, StageWork: stageWork},
		{Name: "vca-bound loose (2x)", New: func() core.Controller { return cc.NewVCABound() }, Kind: "bound", Bound: 2, StageWork: stageWork},
		{Name: "vca-bound loose (8x)", New: func() core.Controller { return cc.NewVCABound() }, Kind: "bound", Bound: 8, StageWork: stageWork},
		{Name: "vca-route chain", New: func() core.Controller { return cc.NewVCARoute() }, Kind: "route", StageWork: stageWork},
		{Name: "vca-route back-edge", New: func() core.Controller { return cc.NewVCARoute() }, Kind: "route", BackEdge: true, StageWork: stageWork},
	}
}

// NewPipeline builds the fixture for one ablation point.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	p := &Pipeline{stack: core.NewStack(cfg.New())}
	names := []string{"parse", "process", "emit"}
	for i, name := range names {
		i := i
		mp := core.NewMicroprotocol(name)
		h := mp.AddHandler("run", func(ctx *core.Context, msg core.Message) error {
			time.Sleep(cfg.StageWork) //samoa:ignore blocking — the sleep is the benchmark's simulated stage work
			if i+1 < len(names) {
				return ctx.AsyncTrigger(p.evs[i+1], msg)
			}
			return nil
		})
		p.stages = append(p.stages, mp)
		p.hs = append(p.hs, h)
		p.evs = append(p.evs, core.NewEventType(name))
	}
	p.stack.Register(p.stages...)
	for i := range p.evs {
		p.stack.Bind(p.evs[i], p.hs[i])
	}
	switch cfg.Kind {
	case "bound":
		bounds := map[*core.Microprotocol]int{}
		for _, mp := range p.stages {
			bounds[mp] = cfg.Bound
		}
		p.spec = core.AccessBound(bounds)
	case "route":
		g := core.NewRouteGraph().Root(p.hs[0]).
			Edge(p.hs[0], p.hs[1]).Edge(p.hs[1], p.hs[2])
		if cfg.BackEdge {
			g.Edge(p.hs[2], p.hs[0])
		}
		p.spec = core.Route(g)
	default:
		p.spec = core.Access(p.stages...)
	}
	return p
}

// Run pushes `items` computations through the pipeline concurrently and
// returns the wall-clock time.
func (p *Pipeline) Run(items int) (time.Duration, error) {
	done := make(chan error, items)
	start := time.Now()
	for i := 0; i < items; i++ {
		go func() { done <- p.stack.External(p.spec, p.evs[0], "item") }()
	}
	for i := 0; i < items; i++ {
		if err := <-done; err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// E5Ablation measures the pipeline under every ablation point.
func E5Ablation(items int, stageWork time.Duration) *Table {
	t := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("spec-precision ablation: %d items × 3 stages × %v", items, stageWork),
		Header: []string{"variant", "time", "vs vca-basic"},
	}
	ideal := time.Duration(items+2) * stageWork
	var basic time.Duration
	for _, cfg := range PipelineConfigs(stageWork) {
		p := NewPipeline(cfg)
		elapsed, err := p.Run(items)
		if err != nil {
			panic(fmt.Sprintf("E5 %s: %v", cfg.Name, err))
		}
		if cfg.Name == "vca-basic" {
			basic = elapsed
		}
		rel := "—"
		if basic > 0 && cfg.Name != "vca-basic" {
			rel = fmt.Sprintf("%.1fx faster", float64(basic)/float64(elapsed))
		}
		t.AddRow(cfg.Name, elapsed.Round(time.Millisecond).String(), rel)
	}
	t.Note("pipelined lower bound ≈ %v; serial upper bound ≈ %v", ideal.Round(time.Millisecond),
		(time.Duration(items) * 3 * stageWork).Round(time.Millisecond))
	t.Note("expected: exact bounds and precise routes pipeline; over-declared bounds and back edges")
	t.Note("defeat early release and degrade to vca-basic (paper §4: accuracy of M buys parallelism)")
	return t
}
