// Package bench holds the workload generators and experiment runners
// behind the repository's evaluation (experiments E1–E9 in DESIGN.md /
// EXPERIMENTS.md). The same runners back the root-level testing.B
// benchmarks and the cmd/samoa-bench harness that prints the paper-style
// tables.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/cc"
	"repro/internal/core"
)

// Variant is a named controller configuration: the algorithm plus the
// isolated-construct flavour its specs must use.
type Variant struct {
	Name string
	New  func() core.Controller
	Kind string // "basic" | "bound" | "route"
}

// Variants returns every controller variant in presentation order:
// baselines first, then the paper's algorithms, then the §7 extensions.
func Variants() []Variant {
	return []Variant{
		{"none", func() core.Controller { return cc.NewNone() }, "basic"},
		{"serial", func() core.Controller { return cc.NewSerial() }, "basic"},
		{"vca-basic", func() core.Controller { return cc.NewVCABasic() }, "basic"},
		{"vca-bound", func() core.Controller { return cc.NewVCABound() }, "bound"},
		{"vca-route", func() core.Controller { return cc.NewVCARoute() }, "route"},
		{"vca-rw", func() core.Controller { return cc.NewVCARW() }, "basic"},
		{"tso", func() core.Controller { return cc.NewTSO() }, "basic"},
		{"wait-die", func() core.Controller { return cc.NewWaitDie() }, "basic"},
	}
}

// Isolating returns the variants that enforce the isolation property.
func Isolating() []Variant {
	out := make([]Variant, 0, 7)
	for _, v := range Variants() {
		if v.Name != "none" {
			out = append(out, v)
		}
	}
	return out
}

// PaperVariants returns the baselines plus the three paper algorithms —
// the set most experiments compare.
func PaperVariants() []Variant {
	out := make([]Variant, 0, 5)
	for _, v := range Variants() {
		switch v.Name {
		case "none", "serial", "vca-basic", "vca-bound", "vca-route":
			out = append(out, v)
		}
	}
	return out
}

// VariantByName finds a variant.
func VariantByName(name string) (Variant, bool) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}

// Table is an experiment result rendered like the paper would report it.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  "+strings.Join(t.Header, "\t"))
	fmt.Fprintln(tw, "  "+strings.Repeat("—", len(strings.Join(t.Header, "  "))))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, "  "+strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}
