// Package bench holds the workload generators and experiment runners
// behind the repository's evaluation (experiments E1–E13 in DESIGN.md /
// EXPERIMENTS.md). The same runners back the root-level testing.B
// benchmarks and the cmd/samoa-bench harness that prints the paper-style
// tables.
package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

// Variant is a named controller configuration: the algorithm plus the
// isolated-construct flavour its specs must use.
type Variant struct {
	Name string
	New  func() core.Controller
	Kind string // "basic" | "bound" | "route"
}

// Variants returns every controller variant in presentation order:
// baselines first, then the paper's algorithms, then the §7 extensions.
func Variants() []Variant {
	return []Variant{
		{"none", func() core.Controller { return cc.NewNone() }, "basic"},
		{"serial", func() core.Controller { return cc.NewSerial() }, "basic"},
		{"vca-basic", func() core.Controller { return cc.NewVCABasic() }, "basic"},
		{"vca-bound", func() core.Controller { return cc.NewVCABound() }, "bound"},
		{"vca-route", func() core.Controller { return cc.NewVCARoute() }, "route"},
		{"vca-rw", func() core.Controller { return cc.NewVCARW() }, "basic"},
		{"tso", func() core.Controller { return cc.NewTSO() }, "basic"},
		{"wait-die", func() core.Controller { return cc.NewWaitDie() }, "basic"},
	}
}

// Isolating returns the variants that enforce the isolation property.
func Isolating() []Variant {
	all := Variants()
	out := make([]Variant, 0, len(all))
	for _, v := range all {
		if v.Name != "none" {
			out = append(out, v)
		}
	}
	return out
}

// PaperVariants returns the baselines plus the three paper algorithms —
// the set most experiments compare.
func PaperVariants() []Variant {
	all := Variants()
	out := make([]Variant, 0, len(all))
	for _, v := range all {
		switch v.Name {
		case "none", "serial", "vca-basic", "vca-bound", "vca-route":
			out = append(out, v)
		}
	}
	return out
}

// VariantByName finds a variant.
func VariantByName(name string) (Variant, bool) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}

// Table is an experiment result rendered like the paper would report it.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// JSON renders the table as row-key → metric → value, the
// machine-readable shape behind samoa-bench -json: the first column is
// the row key (usually the controller), the remaining header cells name
// the metrics. Numeric cells become float64, duration cells become their
// seconds as float64, and anything else stays a string, so downstream
// tooling can diff perf trajectories without re-parsing table text.
func (t *Table) JSON() map[string]map[string]any {
	out := make(map[string]map[string]any, len(t.Rows))
	for _, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		m := make(map[string]any, len(row)-1)
		for i := 1; i < len(row) && i < len(t.Header); i++ {
			m[t.Header[i]] = jsonCell(row[i])
		}
		out[row[0]] = m
	}
	return out
}

// jsonCell converts one rendered cell to its natural JSON value.
func jsonCell(s string) any {
	v := strings.TrimSpace(s)
	if f, err := strconv.ParseFloat(strings.TrimSuffix(v, "%"), 64); err == nil {
		return f
	}
	if d, err := time.ParseDuration(v); err == nil {
		return d.Seconds()
	}
	return s
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  "+strings.Join(t.Header, "\t"))
	fmt.Fprintln(tw, "  "+strings.Repeat("—", len(strings.Join(t.Header, "  "))))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, "  "+strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}
