package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// ScaleWorkload is the E3 fixture: W workers run computations over a
// 3-stage chain of microprotocols with I/O-like work (a sleep) per
// handler — the paper's own motivation for concurrency between
// computations is "processing time consuming I/O operations in
// background" (§3). In the "disjoint" shape every worker owns a private
// chain (specs never overlap); in the "shared" shape all workers hammer
// one chain. The paper's qualitative claim (§1–§2): Appia's serial model
// cannot overlap independent computations, SAMOA can.
type ScaleWorkload struct {
	stack  *core.Stack
	chains [][]*core.Microprotocol
	events [][]*core.EventType
	specs  []*core.Spec
	shared bool
}

// chainLen is the number of stages each computation visits.
const chainLen = 3

// NewScaleWorkload builds the fixture with `workers` private chains
// (disjoint) or one chain everyone uses (shared). work is the simulated
// I/O latency per handler.
func NewScaleWorkload(v Variant, workers int, shared bool, work time.Duration) *ScaleWorkload {
	w := &ScaleWorkload{shared: shared}
	w.stack = core.NewStack(v.New())
	nChains := workers
	if shared {
		nChains = 1
	}
	for c := 0; c < nChains; c++ {
		var mps []*core.Microprotocol
		var evs []*core.EventType
		var hs []*core.Handler
		for i := 0; i < chainLen; i++ {
			i := i
			mp := core.NewMicroprotocol(fmt.Sprintf("c%d-s%d", c, i))
			evs = append(evs, core.NewEventType(fmt.Sprintf("c%d-e%d", c, i)))
			h := mp.AddHandler("run", func(ctx *core.Context, msg core.Message) error {
				time.Sleep(work) //samoa:ignore blocking — the sleep is the benchmark's simulated handler work
				if i+1 < chainLen {
					return ctx.Trigger(evs[i+1], msg)
				}
				return nil
			})
			mps = append(mps, mp)
			hs = append(hs, h)
		}
		w.stack.Register(mps...)
		for i := range evs {
			w.stack.Bind(evs[i], hs[i])
		}
		w.chains = append(w.chains, mps)
		w.events = append(w.events, evs)

		var spec *core.Spec
		switch v.Kind {
		case "bound":
			bounds := map[*core.Microprotocol]int{}
			for _, mp := range mps {
				bounds[mp] = 1
			}
			spec = core.AccessBound(bounds)
		case "route":
			g := core.NewRouteGraph().Root(hs[0])
			for i := 0; i+1 < len(hs); i++ {
				g.Edge(hs[i], hs[i+1])
			}
			spec = core.Route(g)
		default:
			spec = core.Access(mps...)
		}
		w.specs = append(w.specs, spec)
	}
	return w
}

// RunWorker executes `ops` computations as worker i.
func (w *ScaleWorkload) RunWorker(i, ops int) error {
	c := 0
	if !w.shared {
		c = i
	}
	spec, ev := w.specs[c], w.events[c][0]
	for n := 0; n < ops; n++ {
		if err := w.stack.External(spec, ev, nil); err != nil {
			return err
		}
	}
	return nil
}

// Run executes totalOps computations split across `workers` goroutines and
// returns the throughput in computations per second.
func (w *ScaleWorkload) Run(workers, totalOps int) (float64, error) {
	per := totalOps / workers
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.RunWorker(i, per)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(per*workers) / elapsed.Seconds(), nil
}

// E3Scalability measures throughput versus worker count for the disjoint
// and shared workload shapes.
func E3Scalability(workerCounts []int, opsPerPoint int, work time.Duration) *Table {
	t := &Table{
		ID:    "E3",
		Title: fmt.Sprintf("throughput scaling, %d-stage chain, %d ops/point, %v I/O-like work/handler", chainLen, opsPerPoint, work),
	}
	t.Header = []string{"workload", "controller"}
	for _, g := range workerCounts {
		t.Header = append(t.Header, fmt.Sprintf("g=%d (ops/s)", g))
	}
	t.Header = append(t.Header, "speedup")
	for _, shared := range []bool{false, true} {
		shape := "disjoint"
		if shared {
			shape = "shared"
		}
		for _, v := range PaperVariants() {
			if v.Name == "none" && shared {
				continue // unsynchronised shared state: undefined behaviour
			}
			row := []string{shape, v.Name}
			var first, last float64
			for _, g := range workerCounts {
				w := NewScaleWorkload(v, g, shared, work)
				tput, err := w.Run(g, opsPerPoint)
				if err != nil {
					panic(err)
				}
				if first == 0 {
					first = tput
				}
				last = tput
				row = append(row, fmt.Sprintf("%.0f", tput))
			}
			row = append(row, fmt.Sprintf("%.1fx", last/first))
			t.AddRow(row...)
		}
	}
	t.Note("expected: on disjoint work VCA* scale with workers while Serial stays flat;")
	t.Note("on fully-shared work VCAbasic ≈ Serial (correct but serialized) — the cost of coarse specs")
	return t
}
