package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

// RWWorkload is the E7 fixture for the paper's §7 isolation-level
// extension: a "config" microprotocol with a read-only get handler and a
// writing set handler. Readers declare (via a routing spec) that they only
// call get; writers declare set. Under VCARW consecutive readers share the
// microprotocol; under the plain algorithms every computation serializes.
type RWWorkload struct {
	stack     *core.Stack
	eGet      *core.EventType
	eSet      *core.EventType
	readSpec  *core.Spec
	writeSpec *core.Spec
	val       int
}

// NewRWWorkload builds the fixture; handlerWork is the simulated handler
// latency (I/O-ish, so reader concurrency pays off).
func NewRWWorkload(ctrl core.Controller, handlerWork time.Duration) *RWWorkload {
	w := &RWWorkload{}
	w.stack = core.NewStack(ctrl)
	config := core.NewMicroprotocol("config")
	hGet := config.AddHandler("get", func(*core.Context, core.Message) error {
		time.Sleep(handlerWork) //samoa:ignore blocking — the sleep is the benchmark's simulated handler work
		_ = w.val
		return nil
	}, core.ReadOnly())
	hSet := config.AddHandler("set", func(*core.Context, core.Message) error {
		time.Sleep(handlerWork) //samoa:ignore blocking — the sleep is the benchmark's simulated handler work
		w.val++
		return nil
	})
	w.stack.Register(config)
	w.eGet, w.eSet = core.NewEventType("get"), core.NewEventType("set")
	w.stack.Bind(w.eGet, hGet)
	w.stack.Bind(w.eSet, hSet)
	w.readSpec = core.Route(core.NewRouteGraph().Root(hGet))
	w.writeSpec = core.Route(core.NewRouteGraph().Root(hSet))
	return w
}

// Run executes opsPerWorker computations on each of `workers` goroutines
// with the given read ratio, returning throughput (ops/s) and the final
// write count (for the lost-update check).
func (w *RWWorkload) Run(workers, opsPerWorker int, readRatio float64) (float64, int, error) {
	var wg sync.WaitGroup
	errs := make([]error, workers)
	writesPlanned := 0
	plans := make([][]bool, workers) // true = read
	for i := range plans {
		rng := rand.New(rand.NewSource(int64(i) + 13))
		plan := make([]bool, opsPerWorker)
		for j := range plan {
			plan[j] = rng.Float64() < readRatio
			if !plan[j] {
				writesPlanned++
			}
		}
		plans[i] = plan
	}
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, isRead := range plans[i] {
				var err error
				if isRead {
					err = w.stack.External(w.readSpec, w.eGet, nil)
				} else {
					err = w.stack.External(w.writeSpec, w.eSet, nil)
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	if w.val != writesPlanned {
		return 0, 0, fmt.Errorf("lost update: %d writes applied, %d planned", w.val, writesPlanned)
	}
	return float64(workers*opsPerWorker) / elapsed.Seconds(), writesPlanned, nil
}

// E7Extensions compares the §7 extension controllers on read-heavy mixes.
func E7Extensions(workers, opsPerWorker int, ratios []float64, handlerWork time.Duration) *Table {
	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("§7 extensions: %d workers × %d ops, %v/handler", workers, opsPerWorker, handlerWork),
	}
	t.Header = []string{"controller"}
	for _, r := range ratios {
		t.Header = append(t.Header, fmt.Sprintf("%.0f%% reads (ops/s)", r*100))
	}
	variants := []struct {
		name string
		mk   func() core.Controller
	}{
		{"serial", func() core.Controller { return cc.NewSerial() }},
		{"vca-basic", func() core.Controller { return cc.NewVCABasic() }},
		{"tso", func() core.Controller { return cc.NewTSO() }},
		{"vca-rw", func() core.Controller { return cc.NewVCARW() }},
	}
	for _, v := range variants {
		row := []string{v.name}
		for _, r := range ratios {
			w := NewRWWorkload(v.mk(), handlerWork)
			tput, _, err := w.Run(workers, opsPerWorker, r)
			if err != nil {
				panic(fmt.Sprintf("E7 %s: %v", v.name, err))
			}
			row = append(row, fmt.Sprintf("%.0f", tput))
		}
		t.AddRow(row...)
	}
	t.Note("expected: vca-rw scales with the read ratio (readers share the microprotocol);")
	t.Note("conservative TSO serializes conflicting computations ≈ serial/vca-basic (paper §6 remark)")
	return t
}
