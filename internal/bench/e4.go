package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gc"
	"repro/internal/simnet"
)

// Cluster is the E4 fixture: an n-site group-communication stack on a
// simulated network, counting total-order deliveries. It reproduces the
// paper's §7 experiment — "we have expressed in J-SAMOA the Atomic
// Broadcast protocol ... and executed it on distributed machines ... with
// a different grain of concurrent execution among computations".
type Cluster struct {
	Net    *simnet.Network
	Sites  []*gc.Site
	nDeliv atomic.Int64
}

// kindOf maps a variant kind string to the Site spec kind.
func kindOf(kind string) gc.SpecKind {
	switch kind {
	case "bound":
		return gc.SpecBound
	case "route":
		return gc.SpecRoute
	default:
		return gc.SpecBasic
	}
}

// NewCluster starts n sites under the variant's controller.
func NewCluster(v Variant, n int, seed int64) *Cluster {
	c := &Cluster{}
	c.Net = simnet.New(simnet.Config{
		Nodes:    n,
		MinDelay: 20 * time.Microsecond,
		MaxDelay: 200 * time.Microsecond,
		Seed:     seed,
	})
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	view := gc.NewView(ids...)
	for i := 0; i < n; i++ {
		s := gc.NewSite(gc.Config{
			Net: c.Net, ID: simnet.NodeID(i), InitialView: view,
			Controller: v.New(), SpecKind: kindOf(v.Kind),
			FDInterval: -1, // benign run: no failure detector noise
			// Generous RTO: the run is loss-free, so any retransmission
			// is pure queueing noise that would inflate the datagram
			// counts of the slower controllers.
			RTO:     500 * time.Millisecond,
			Deliver: func(simnet.NodeID, []byte) { c.nDeliv.Add(1) },
		})
		c.Sites = append(c.Sites, s)
		s.Start()
	}
	return c
}

// Deliveries reports the total deliveries across all sites.
func (c *Cluster) Deliveries() int64 { return c.nDeliv.Load() }

// Broadcast issues msgs atomic broadcasts round-robin from all sites
// (concurrently per site) and waits until every site delivered every
// message. It returns the elapsed time.
func (c *Cluster) Broadcast(msgs int) (time.Duration, error) {
	n := len(c.Sites)
	want := c.Deliveries() + int64(msgs*n)
	payload := []byte("payload")
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, s := range c.Sites {
		wg.Add(1)
		go func(i int, s *gc.Site) {
			defer wg.Done()
			for k := 0; k < msgs/n+boolInt(i < msgs%n); k++ {
				if err := s.ABcast(payload); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for c.Deliveries() < want {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("timeout: delivered %d of %d", c.Deliveries(), want)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return time.Since(start), nil
}

// Stop shuts the cluster down and returns any site errors.
func (c *Cluster) Stop() []error {
	var errs []error
	for _, s := range c.Sites {
		s.Stop()
		errs = append(errs, s.Errs()...)
	}
	c.Net.Close()
	return errs
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// E4ABcast measures atomic-broadcast completion time and throughput per
// controller and group size.
func E4ABcast(sizes []int, msgs int) *Table {
	t := &Table{
		ID:     "E4",
		Title:  fmt.Sprintf("atomic broadcast on simnet (%d msgs, all-deliver-all)", msgs),
		Header: []string{"controller", "sites", "time", "msgs/s", "datagrams"},
	}
	for _, n := range sizes {
		for _, v := range PaperVariants() {
			if v.Name == "none" {
				continue // not isolating: §3 race, unsynchronised state
			}
			c := NewCluster(v, n, 77)
			elapsed, err := c.Broadcast(msgs)
			stats := c.Net.Stats()
			if errs := c.Stop(); len(errs) > 0 {
				panic(fmt.Sprintf("E4 %s/%d: %v", v.Name, n, errs[0]))
			}
			if err != nil {
				panic(fmt.Sprintf("E4 %s/%d: %v", v.Name, n, err))
			}
			t.AddRow(v.Name, fmt.Sprint(n), elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", float64(msgs)/elapsed.Seconds()),
				fmt.Sprint(stats.Sent))
		}
	}
	t.Note("expected: all isolating controllers complete correctly; throughput comparable —")
	t.Note("the per-site specs of data datagrams span the whole stack, so per-site computations")
	t.Note("serialize similarly; acks/beats use narrow specs and overlap (paper §7: overhead is low)")
	return t
}
