package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/gc"
	"repro/internal/kvstore"
	"repro/internal/transport"
	"repro/internal/transport/udpnet"
)

// E12KVOverUDP measures the replicated key-value store over real
// loopback UDP sockets — the deployment substrate of cmd/samoa-node —
// instead of simnet. Three replicas, each on its own udpnet transport
// (the N-process shape from udpnet.NewCluster), concurrent writers
// spread across all replicas; every Put waits for its own replicated
// apply, so ops/s is end-to-end total-order throughput through the
// kernel's UDP stack, and applies/s counts the cluster-wide state-
// machine applies it fans out into. "datagrams" is the cluster-wide
// socket-level send count, retransmissions included.
func E12KVOverUDP(writers, perWriter int) *Table {
	t := &Table{
		ID:     "E12",
		Title:  fmt.Sprintf("replicated kvstore over loopback UDP (3 sites, %d writers × %d puts)", writers, perWriter),
		Header: []string{"controller", "ops", "time", "ops/s", "applies/s", "datagrams"},
	}
	if c, err := net.ListenPacket("udp", "127.0.0.1:0"); err != nil {
		t.Note(fmt.Sprintf("SKIPPED: loopback UDP unavailable: %v", err))
		return t
	} else {
		c.Close()
	}

	const sites = 3
	for _, v := range []string{"serial", "vca-basic", "vca-route"} {
		variant, ok := variantByName(v)
		if !ok {
			panic("E12: unknown variant " + v)
		}
		nets, err := udpnet.NewCluster(sites)
		if err != nil {
			panic(fmt.Sprintf("E12 %s: %v", v, err))
		}
		ids := make([]transport.NodeID, sites)
		for i := range ids {
			ids[i] = transport.NodeID(i)
		}
		view := gc.NewView(ids...)
		stores := make([]*kvstore.Store, sites)
		for i := range stores {
			stores[i] = kvstore.New(kvstore.Config{
				Net: nets[i], ID: transport.NodeID(i), InitialView: view,
				OpTimeout: 30 * time.Second,
				Site: gc.Config{
					Controller: variant.New(), SpecKind: kindOf(variant.Kind),
					FDInterval: -1, // benign run: no failure-detector noise
					RTO:        100 * time.Millisecond,
				},
			})
			stores[i].Start()
		}

		start := time.Now()
		var wg sync.WaitGroup
		werrs := make([]error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := stores[w%sites]
				for k := 0; k < perWriter; k++ {
					if err := s.Put(fmt.Sprintf("w%d-k%d", w, k), fmt.Sprint(k)); err != nil {
						werrs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)

		var datagrams uint64
		for _, n := range nets {
			datagrams += n.Stats().Sent
		}
		for i, s := range stores {
			s.Stop()
			for _, err := range s.Errs() {
				panic(fmt.Sprintf("E12 %s replica %d: %v", v, i, err))
			}
		}
		for _, n := range nets {
			n.Close()
		}
		for w, err := range werrs {
			if err != nil {
				panic(fmt.Sprintf("E12 %s writer %d: %v", v, w, err))
			}
		}

		ops := writers * perWriter
		t.AddRow(v, fmt.Sprint(ops), elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
			fmt.Sprintf("%.0f", float64(ops*sites)/elapsed.Seconds()),
			fmt.Sprint(datagrams))
	}
	t.Note("same stack as E4 but through real kernel sockets (udpnet) instead of simnet;")
	t.Note("every Put blocks on its replicated apply, so ops/s is end-to-end consensus +")
	t.Note("ABcast latency over loopback UDP — compare cmd/samoa-node's 3-process deployment")
	return t
}

// variantByName looks up a controller variant by its table name.
func variantByName(name string) (Variant, bool) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}
