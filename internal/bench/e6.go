package bench

import (
	"fmt"
	"time"

	"repro/internal/gc"
	"repro/internal/simnet"
)

// E6Result is one run of the §3 view-change race.
type E6Result struct {
	Delivered    bool
	DroppedStale uint64
}

// RunE6Race orchestrates the paper's §3 Problem once under a controller
// variant: relay site B processes a reliable broadcast from a crashed
// origin while installing the view that adds site C, parked — by a test
// hook — in the window where RelCast has the new view and RelComm still
// has the old one. Returns whether C eventually received the message.
func RunE6Race(v Variant) E6Result {
	net := simnet.New(simnet.Config{Nodes: 3, Seed: 61})
	defer net.Close()

	inWindow := make(chan struct{}, 1)
	release := make(chan struct{})
	delivered := make(chan struct{}, 4)

	c := gc.NewSite(gc.Config{
		Net: net, ID: 2, InitialView: gc.NewView(0, 1, 2), FDInterval: -1,
		RDeliver: func(simnet.NodeID, []byte) { delivered <- struct{}{} },
	})
	c.Start()
	defer c.Stop()

	b := gc.NewSite(gc.Config{
		Net: net, ID: 1, InitialView: gc.NewView(0, 1), FDInterval: -1,
		Controller: v.New(), SpecKind: kindOf(v.Kind),
		Passive: true, // only the two orchestrated computations run on B
		AfterRelCastView: func() {
			select {
			case inWindow <- struct{}{}:
			default:
			}
			<-release
		},
	})
	b.Start()
	defer b.Stop()

	m := gc.BuildCastDatagram(0, 1, gc.MsgID{Origin: 0, Seq: 1}, []byte("m"))
	net.Crash(0)

	viewDone := make(chan error, 1)
	go func() { viewDone <- b.InjectViewChange('+', 2) }()
	<-inWindow

	mDone := make(chan error, 1)
	go func() { mDone <- b.InjectDatagram(m) }()
	if v.Name == "none" {
		<-mDone // interleaves inside the window
	} else {
		time.Sleep(20 * time.Millisecond) // parks on the controller
	}
	close(release)
	<-viewDone
	if v.Name != "none" {
		<-mDone
	}

	select {
	case <-delivered:
		return E6Result{Delivered: true, DroppedStale: b.DroppedStale()}
	case <-time.After(300 * time.Millisecond):
		return E6Result{Delivered: false, DroppedStale: b.DroppedStale()}
	}
}

// E6ViewRace runs the race `trials` times per controller and reports
// message losses — the paper's §3 Problem and Solution by Isolation.
func E6ViewRace(trials int) *Table {
	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("§3 view-change race (%d adversarial trials per controller)", trials),
		Header: []string{"controller", "messages lost", "stale-view drops at RelComm"},
	}
	for _, v := range PaperVariants() {
		lost, drops := 0, uint64(0)
		for i := 0; i < trials; i++ {
			res := RunE6Race(v)
			if !res.Delivered {
				lost++
			}
			drops += res.DroppedStale
		}
		t.AddRow(v.Name, fmt.Sprintf("%d/%d", lost, trials), fmt.Sprint(drops))
	}
	t.Note("expected: None loses the message every time; every isolating controller delivers it —")
	t.Note("with no change to the protocol code (paper §3 'Solution by Isolation')")
	return t
}
