package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

// nopSnapshot makes a stateless microprotocol acceptable to rollback
// controllers.
type nopSnapshot struct{}

func (nopSnapshot) Snapshot() any { return nil }
func (nopSnapshot) Restore(any)   {}

// counterState is a snapshottable counter for the E8 workload.
type counterState struct{ v int }

func (s *counterState) Snapshot() any    { return s.v }
func (s *counterState) Restore(snap any) { s.v = snap.(int) }

// RollbackWorkload is the E8 fixture comparing the paper's two algorithm
// groups: versioning (never aborts, claims everything up front) versus
// timestamp ordering with rollback/recovery (locks incrementally, aborts
// on conflict). Computations touch k of m counter microprotocols in
// random orders — crossed orders are exactly where incremental locking
// must abort and up-front versioning must serialize.
type RollbackWorkload struct {
	stack  *core.Stack
	mps    []*core.Microprotocol
	states []*counterState
	evs    []*core.EventType
	work   time.Duration
}

// rwScript chains the computation's visits.
type rwScript struct {
	seq []int
	pos int
}

// NewRollbackWorkload builds the fixture over m counters with the given
// per-handler work.
func NewRollbackWorkload(ctrl core.Controller, m int, work time.Duration) *RollbackWorkload {
	w := &RollbackWorkload{stack: core.NewStack(ctrl), work: work}
	for i := 0; i < m; i++ {
		st := &counterState{}
		mp := core.NewMicroprotocol(fmt.Sprintf("acct%d", i))
		mp.SetSnapshotter(st)
		ev := core.NewEventType(fmt.Sprintf("e%d", i))
		h := mp.AddHandler("update", func(ctx *core.Context, msg core.Message) error {
			time.Sleep(w.work) //samoa:ignore blocking — the sleep is the benchmark's simulated handler work
			st.v++
			s := msg.(*rwScript)
			if s.pos+1 < len(s.seq) {
				return ctx.Trigger(w.evs[s.seq[s.pos+1]], &rwScript{seq: s.seq, pos: s.pos + 1})
			}
			return nil
		})
		w.mps = append(w.mps, mp)
		w.states = append(w.states, st)
		w.evs = append(w.evs, ev)
		w.stack.Register(mp)
		w.stack.Bind(ev, h)
	}
	return w
}

// Run executes ops computations per worker, each touching k distinct
// counters in a random order, and returns throughput plus the exactness
// check of the final counters.
func (w *RollbackWorkload) Run(workers, ops, k int, seed int64) (float64, error) {
	want := make([]int, len(w.mps))
	scripts := make([][][]int, workers)
	rng := rand.New(rand.NewSource(seed))
	for i := range scripts {
		scripts[i] = make([][]int, ops)
		for j := range scripts[i] {
			seq := rng.Perm(len(w.mps))[:k]
			scripts[i][j] = seq
			for _, x := range seq {
				want[x]++
			}
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, seq := range scripts[i] {
				var mps []*core.Microprotocol
				for _, x := range seq {
					mps = append(mps, w.mps[x])
				}
				if err := w.stack.External(core.Access(mps...), w.evs[seq[0]], &rwScript{seq: seq}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	for i, x := range want {
		if w.states[i].v != x {
			return 0, fmt.Errorf("lost/duplicated update on %d: %d != %d", i, w.states[i].v, x)
		}
	}
	return float64(workers*ops) / elapsed.Seconds(), nil
}

// E8Rollback compares versioning against rollback scheduling at low and
// high contention.
func E8Rollback(workers, ops int, work time.Duration) *Table {
	t := &Table{
		ID:     "E8",
		Title:  fmt.Sprintf("versioning vs rollback/recovery: %d workers × %d ops, %v/handler", workers, ops, work),
		Header: []string{"controller", "low contention (2 of 16) ops/s", "high contention (3 of 4) ops/s", "aborts (low/high)"},
	}
	variants := []struct {
		name string
		mk   func() core.Controller
	}{
		{"serial", func() core.Controller { return cc.NewSerial() }},
		{"vca-basic", func() core.Controller { return cc.NewVCABasic() }},
		{"tso", func() core.Controller { return cc.NewTSO() }},
		{"wait-die", func() core.Controller { return cc.NewWaitDie() }},
	}
	for _, v := range variants {
		var tputs []float64
		var aborts []uint64
		for _, shape := range []struct{ m, k int }{{16, 2}, {4, 3}} {
			ctrl := v.mk()
			w := NewRollbackWorkload(ctrl, shape.m, work)
			tput, err := w.Run(workers, ops, shape.k, 99)
			if err != nil {
				panic(fmt.Sprintf("E8 %s: %v", v.name, err))
			}
			tputs = append(tputs, tput)
			if wd, ok := ctrl.(*cc.WaitDie); ok {
				aborts = append(aborts, wd.Aborts())
			} else {
				aborts = append(aborts, 0)
			}
		}
		ab := "—"
		if v.name == "wait-die" {
			ab = fmt.Sprintf("%d / %d", aborts[0], aborts[1])
		}
		t.AddRow(v.name, fmt.Sprintf("%.0f", tputs[0]), fmt.Sprintf("%.0f", tputs[1]), ab)
	}
	t.Note("expected: at low contention both groups overlap disjoint computations; at high contention")
	t.Note("wait-die pays for aborted work while the versioning group never aborts — the paper's stated")
	t.Note("reason for focusing on versioning (computations 'are never aborted', §1)")
	return t
}
