package cctest_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/cctest"
	"repro/internal/core"
	"repro/internal/sched"
)

// exploreTargets lists every isolating controller with the spec flavour
// and snapshot requirement its explorations need.
type exploreTarget struct {
	name     string
	neW      func() core.Controller
	kind     cctest.Kind
	snapshot bool
}

func exploreTargets() []exploreTarget {
	return []exploreTarget{
		{name: "serial", neW: func() core.Controller { return cc.NewSerial() }, kind: cctest.KindBasic},
		{name: "vca-basic", neW: func() core.Controller { return cc.NewVCABasic() }, kind: cctest.KindBasic},
		{name: "ref-vca-basic", neW: func() core.Controller { return cc.NewRefVCABasic() }, kind: cctest.KindBasic},
		{name: "vca-bound", neW: func() core.Controller { return cc.NewVCABound() }, kind: cctest.KindBound},
		{name: "vca-route", neW: func() core.Controller { return cc.NewVCARoute() }, kind: cctest.KindRoute},
		{name: "vca-rw", neW: func() core.Controller { return cc.NewVCARW() }, kind: cctest.KindBasic},
		{name: "tso", neW: func() core.Controller { return cc.NewTSO() }, kind: cctest.KindBasic},
		{name: "wait-die", neW: func() core.Controller { return cc.NewWaitDie() }, kind: cctest.KindBasic, snapshot: true},
	}
}

// strategies returns the three exploration strategies, fresh per use.
func strategies() map[string]func() sched.Strategy {
	return map[string]func() sched.Strategy{
		"random": func() sched.Strategy { return sched.NewRandomWalk(1) },
		"pct":    func() sched.Strategy { return sched.NewPCT(2, 3) },
		"dfs":    func() sched.Strategy { return sched.NewDFS(14) },
	}
}

// TestExploreIsolatingControllers model-checks the isolation property:
// every strategy, over every isolating controller, over every explored
// workload, must find no violation.
func TestExploreIsolatingControllers(t *testing.T) {
	for _, tgt := range exploreTargets() {
		tgt := tgt
		t.Run(tgt.name, func(t *testing.T) {
			for sname, mk := range strategies() {
				mk := mk
				t.Run(sname, func(t *testing.T) {
					runs := 60
					if sname == "dfs" {
						runs = 400
					}
					cctest.Explore(t, cctest.ExploreConfig{
						New:      tgt.neW,
						Kind:     tgt.kind,
						Snapshot: tgt.snapshot,
						Strategy: mk,
						Runs:     runs,
						MaxSteps: 20000,
					})
				})
			}
		})
	}
}

// TestExploreReconfigure model-checks live reconfiguration: every
// interleaving of an epoch swap (Epoch.Replace of mp0) against spawns,
// releases, and in-flight chains must preserve serializability, lose no
// update on the counter the replaced pair shares, keep lifecycle balance,
// and leave the superseded epoch drained with no errors and no dead-epoch
// dispatches. Targets are the swap-safe controllers: the four epoch-aware
// version tables (core.Reconfigurer) plus serial, which admits one
// computation at a time and so cannot race a swap.
func TestExploreReconfigure(t *testing.T) {
	for _, tgt := range exploreTargets() {
		tgt := tgt
		if _, ok := tgt.neW().(core.Reconfigurer); !ok && tgt.name != "serial" {
			continue
		}
		t.Run(tgt.name, func(t *testing.T) {
			for sname, mk := range strategies() {
				mk := mk
				t.Run(sname, func(t *testing.T) {
					runs := 60
					if sname == "dfs" {
						runs = 400
					}
					cctest.Explore(t, cctest.ExploreConfig{
						New:       tgt.neW,
						Kind:      tgt.kind,
						Snapshot:  tgt.snapshot,
						Strategy:  mk,
						Runs:      runs,
						MaxSteps:  20000,
						Workloads: cctest.SwapWorkloads(),
					})
				})
			}
		})
	}
}

// TestExploreNoneFindsViolation is the negative control: the Cactus
// baseline enforces nothing, so bounded DFS must find a serializability
// or lost-update violation — and its schedule token must replay to the
// identical trace, twice.
func TestExploreNoneFindsViolation(t *testing.T) {
	cfg := cctest.ExploreConfig{
		New:      func() core.Controller { return cc.NewNone() },
		Kind:     cctest.KindBasic,
		Strategy: func() sched.Strategy { return sched.NewDFS(14) },
		Runs:     2000,
		MaxSteps: 20000,
	}
	var violation *sched.Violation
	var wl cctest.Workload
	for _, w := range cctest.Workloads() {
		res := cctest.ExploreWorkload(cfg, w)
		if res.Violation != nil {
			violation, wl = res.Violation, w
			break
		}
	}
	if violation == nil {
		t.Fatal("DFS exploration of cc.NewNone() found no isolation violation; the explorer lost its teeth")
	}
	t.Logf("negative control: workload %s, execution %d: %v", wl.Name, violation.Execution, violation.Err)
	if !strings.HasPrefix(violation.Schedule, "sx1:") {
		t.Fatalf("violation carries no schedule token: %q", violation.Schedule)
	}

	fp1, err1 := cctest.ReplayWorkload(cfg, wl, violation.Schedule)
	if err1 == nil {
		t.Fatalf("replay of %s did not reproduce the violation", violation.Schedule)
	}
	fp2, err2 := cctest.ReplayWorkload(cfg, wl, violation.Schedule)
	if err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("replay is not deterministic: %v vs %v", err1, err2)
	}
	if fp1 == "" || fp1 != fp2 {
		t.Fatalf("replayed traces differ:\n%s\n%s", fp1, fp2)
	}
}

// TestExploreDeep is the long-exploration job: bounded DFS with a much
// larger branching depth and run budget over every isolating controller.
// Gated behind EXPLORE_DEEP=1 (make explore-deep, and the scheduled CI
// job) — it is minutes of work, not unit-test time.
func TestExploreDeep(t *testing.T) {
	if os.Getenv("EXPLORE_DEEP") == "" {
		t.Skip("set EXPLORE_DEEP=1 (or run make explore-deep) for the long DFS exploration")
	}
	for _, tgt := range exploreTargets() {
		tgt := tgt
		t.Run(tgt.name, func(t *testing.T) {
			cctest.Explore(t, cctest.ExploreConfig{
				New:      tgt.neW,
				Kind:     tgt.kind,
				Snapshot: tgt.snapshot,
				Strategy: func() sched.Strategy { return sched.NewDFS(24) },
				Runs:     30000,
				MaxSteps: 50000,
			})
		})
	}
}

// TestExploreSerialTrace sanity-checks determinism end to end: replaying
// a passing schedule from an isolating controller reproduces its trace.
func TestExploreSerialTrace(t *testing.T) {
	cfg := cctest.ExploreConfig{
		New:      func() core.Controller { return cc.NewVCABasic() },
		Kind:     cctest.KindBasic,
		Strategy: func() sched.Strategy { return sched.NewRandomWalk(7) },
		Runs:     1,
		MaxSteps: 20000,
	}
	wl := cctest.Workloads()[1]
	res := cctest.ExploreWorkload(cfg, wl)
	if res.Violation != nil {
		t.Fatalf("vca-basic violated isolation: %v", res.Violation)
	}
}
