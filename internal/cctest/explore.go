package cctest

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// Explore mode model-checks the conformance properties instead of
// sampling them: every computation of a small fixed workload runs as a
// task of a virtual scheduler, every controller block/wake and every
// framework dispatch step is a scheduling decision, and a Strategy
// (random walk, PCT, bounded DFS) drives which interleavings are
// visited. Each visited execution is checked for serializability, lost
// updates, and lifecycle balance; deadlocks surface immediately as the
// scheduler's empty-runnable-set error rather than a test timeout.
//
// A violation carries a schedule token; ReplayWorkload re-executes that
// exact interleaving, deterministically.

// Workload is one small explored scenario: M counter microprotocols and
// one computation per script, each script a chain of visits. Swap adds
// one more task that live-replaces mp0 mid-workload (Stack.Reconfigure
// with Epoch.Replace), so every interleaving of the epoch swap against
// spawns, releases, and in-flight chains is explored alongside the
// scripts.
type Workload struct {
	Name    string
	M       int
	Scripts [][]int
	Swap    bool
}

// Workloads returns the explored scenario set. Deliberately tiny:
// exploration buys exhaustiveness on small instances, the randomized
// battery keeps covering big ones.
func Workloads() []Workload {
	return []Workload{
		{Name: "2comps-1mp", M: 1, Scripts: [][]int{{0}, {0}}},
		{Name: "2comps-cross", M: 2, Scripts: [][]int{{0, 1}, {1, 0}}},
		{Name: "3comps-mixed", M: 2, Scripts: [][]int{{0, 0}, {1, 0}, {1}}},
	}
}

// SwapWorkloads returns the reconfiguration scenario set: the same tiny
// script shapes, each raced against a live replacement of mp0. The
// lost-update check stays meaningful across the swap because Replace
// continues the predecessor's version slot — an interleaving where the
// old and new versions of mp0 both increment counter 0 unserialised
// would be reported, not masked by the reconfiguration.
func SwapWorkloads() []Workload {
	return []Workload{
		{Name: "swap-2comps-1mp", M: 1, Scripts: [][]int{{0}, {0}}, Swap: true},
		{Name: "swap-2comps-cross", M: 2, Scripts: [][]int{{0, 1}, {1, 0}}, Swap: true},
		{Name: "swap-3comps-mixed", M: 2, Scripts: [][]int{{0, 0}, {1, 0}, {1}}, Swap: true},
	}
}

// ExploreConfig parameterizes an exploration.
type ExploreConfig struct {
	// New creates a fresh controller per execution.
	New func() core.Controller
	// Kind is the Spec flavour to build.
	Kind Kind
	// Snapshot attaches snapshotters (rollback controllers need them).
	Snapshot bool
	// Strategy creates a fresh strategy per workload (strategies are
	// stateful across the executions of one exploration).
	Strategy func() sched.Strategy
	// Runs caps executions per workload (exhaustive strategies may stop
	// earlier).
	Runs int
	// MaxSteps bounds scheduling decisions per execution (0: default).
	MaxSteps int
	// Workloads overrides the explored scenario set (default Workloads()).
	Workloads []Workload
}

// runSpec builds one deterministically-scheduled execution of wl,
// returning the spec together with its fixture (for fingerprinting).
func runSpec(cfg ExploreConfig, wl Workload, s *sched.Scheduler) (sched.RunSpec, *fixture) {
	rcfg := Config{New: cfg.New, Kind: cfg.Kind, Snapshot: cfg.Snapshot}
	f := newFixtureSched(rcfg, wl.M, s)
	want := make([]int, wl.M)
	for _, seq := range wl.Scripts {
		for _, x := range seq {
			want[x]++
		}
	}
	var errs []error
	spec := sched.RunSpec{
		Body: func() {
			for _, seq := range wl.Scripts {
				seq := seq
				s.Go(func() {
					if err := f.runScript(cfg.Kind, seq); err != nil {
						errs = append(errs, err)
					}
				})
			}
			if wl.Swap {
				s.Go(func() {
					if err := f.swapMP(0); err != nil {
						errs = append(errs, fmt.Errorf("swap: %w", err))
					}
				})
			}
		},
		Check: func() error {
			if len(errs) > 0 {
				return fmt.Errorf("computation failed: %w", errs[0])
			}
			if rep := f.rec.Check(); !rep.Serializable {
				return fmt.Errorf("isolation property violated: no serial order (conflict cycle over computations %v)", rep.Cycle)
			}
			for i, w := range want {
				if got := f.count(i); got != w {
					return fmt.Errorf("lost update on mp%d: counter %d, want %d", i, got, w)
				}
			}
			st := f.rec.Stats()
			if st.Spawned != st.Completed+st.Aborted {
				return fmt.Errorf("lifecycle imbalance: %d spawned, %d completed, %d aborted",
					st.Spawned, st.Completed, st.Aborted)
			}
			if wl.Swap {
				return checkSwapped(f)
			}
			return nil
		},
		// No StateHash: DFS pruning needs the hash to capture the FULL
		// state (control flow included, not just counters), otherwise
		// distinct schedule prefixes are conflated and the search is cut
		// unsoundly. These workloads are small enough to explore unpruned.
	}
	return spec, f
}

// checkSwapped asserts the epoch machinery converged by the end of a
// swap workload: the stack is on epoch 2, the superseded epoch drained
// inline with the last exiting computation, retirement recorded no
// lifecycle or controller error, and nothing dispatched into the dead
// epoch.
func checkSwapped(f *fixture) error {
	if got := f.stack.CurrentEpoch(); got != 2 {
		return fmt.Errorf("epoch %d after swap workload, want 2", got)
	}
	select {
	case <-f.stack.EpochDrained(1):
	default:
		return fmt.Errorf("epoch 1 not drained although all computations completed")
	}
	if errs := f.stack.EpochErrs(); len(errs) > 0 {
		return fmt.Errorf("epoch error: %w", errs[0])
	}
	if n := f.stack.DeadEpochDispatches(); n != 0 {
		return fmt.Errorf("%d dispatches into a retired epoch", n)
	}
	return nil
}

// ExploreWorkload explores one workload under the config's strategy.
func ExploreWorkload(cfg ExploreConfig, wl Workload) sched.Result {
	return sched.Explore(sched.Options{
		Strategy: cfg.Strategy(),
		Runs:     cfg.Runs,
		MaxSteps: cfg.MaxSteps,
	}, func(s *sched.Scheduler) sched.RunSpec {
		spec, _ := runSpec(cfg, wl, s)
		return spec
	})
}

// ReplayWorkload re-executes the interleaving a schedule token records
// against a fresh build of the workload and returns the execution's
// trace fingerprint together with the reproduced violation (nil when
// the schedule passes all checks).
func ReplayWorkload(cfg ExploreConfig, wl Workload, token string) (string, error) {
	var fp string
	err := sched.Replay(token, func(s *sched.Scheduler) sched.RunSpec {
		spec, f := runSpec(cfg, wl, s)
		check := spec.Check
		spec.Check = func() error {
			fp = fingerprint(f)
			return check()
		}
		return spec
	})
	return fp, err
}

// Explore runs the whole workload set and fails the test on the first
// violation, printing its replay token.
func Explore(t *testing.T, cfg ExploreConfig) {
	t.Helper()
	wls := cfg.Workloads
	if wls == nil {
		wls = Workloads()
	}
	for _, wl := range wls {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			res := ExploreWorkload(cfg, wl)
			if v := res.Violation; v != nil {
				t.Fatalf("strategy %s, workload %s: %v", res.Strategy, wl.Name, v)
			}
			t.Logf("strategy %s: %d executions, exhausted=%v", res.Strategy, res.Executions, res.Exhausted)
		})
	}
}

// fingerprint renders the recorded trace as a compact deterministic
// string: replaying the same schedule must reproduce it byte-for-byte.
func fingerprint(f *fixture) string {
	out := ""
	for _, e := range f.rec.Entries() {
		out += fmt.Sprintf("%s c%d i%d", e.Kind, e.Comp, e.Inv)
		if e.Handler != nil {
			out += " " + e.Handler.String()
		}
		out += ";"
	}
	for i := range f.counters {
		out += fmt.Sprintf(" mp%d=%d", i, f.count(i))
	}
	return out
}
