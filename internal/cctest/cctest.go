// Package cctest is a conformance suite for concurrency controllers: any
// core.Controller implementation claiming the isolation property can be
// validated against the same battery the built-in algorithms pass. A
// controller author runs:
//
//	func TestMyControllerConformance(t *testing.T) {
//	    cctest.Run(t, cctest.Config{
//	        New:  func() core.Controller { return NewMyController() },
//	        Kind: cctest.KindBasic, // which Spec flavour it consumes
//	    })
//	}
//
// The battery checks, over randomized workloads (chains and async trees):
//
//   - Safety: every recorded execution is conflict-serializable (the
//     isolation property, via the trace checker), with no lost updates on
//     deliberately unsynchronized microprotocol state.
//   - Liveness: every computation completes (the suite itself would hang
//     or time out on a deadlock; waits only ever resolve because
//     controllers must be deadlock-free).
//   - Spec enforcement: calls to undeclared microprotocols fail with
//     UndeclaredError in the calling thread.
//   - Lifecycle balance: one Complete (or retry chain) per Spawn.
package cctest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Kind selects which Spec flavour the controller consumes.
type Kind int

// Spec flavours.
const (
	KindBasic Kind = iota // core.Access
	KindBound             // core.AccessBound
	KindRoute             // core.Route
)

// Config parameterizes a conformance run.
type Config struct {
	// New creates a fresh controller (one per stack; never reused).
	New func() core.Controller
	// Kind is the Spec flavour to build for it.
	Kind Kind
	// Seeds is the number of randomized workloads (default 12).
	Seeds int
	// SkipUndeclared skips the spec-enforcement check, for controllers
	// that deliberately do not validate M (e.g. the baselines).
	SkipUndeclared bool
	// Snapshot, when true, attaches snapshotters to every microprotocol
	// (required by rollback controllers).
	Snapshot bool
}

// Run executes the battery.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	if cfg.New == nil {
		t.Fatal("cctest: Config.New required")
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 12
	}
	t.Run("isolation-and-liveness", func(t *testing.T) {
		for _, seed := range seedList(cfg.Seeds) {
			seed := seed
			// The seed names the subtest, so a failure is re-runnable in
			// isolation: CCTEST_SEED=<n> go test -run <this test> ./...
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				runWorkload(t, cfg, seed)
			})
		}
	})
	if !cfg.SkipUndeclared {
		t.Run("undeclared-rejected", func(t *testing.T) {
			runUndeclared(t, cfg)
		})
	}
}

// seedList returns the workload seeds to run: 0..n-1, or just the value
// of CCTEST_SEED when set (reproducing one reported failure).
func seedList(n int) []int64 {
	if env := os.Getenv("CCTEST_SEED"); env != "" {
		if v, err := strconv.ParseInt(env, 10, 64); err == nil {
			return []int64{v}
		}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// fixture is a protocol of m counter microprotocols whose handlers chain
// through a script; counters are atomic only where intra-computation
// concurrency demands it — cross-computation safety must come from the
// controller.
type fixture struct {
	stack    *core.Stack
	rec      *trace.Recorder
	mps      []*core.Microprotocol
	events   []*core.EventType
	handlers []*core.Handler
	counters []int
	snaps    []*snapState

	// yield runs between the read and the write of the deliberately racy
	// counter increment: runtime.Gosched under the stress battery (inviting
	// real preemption), Scheduler.Step under exploration (making the same
	// window an explicit decision point).
	yield func()
}

type snapState struct{ v int }

func (s *snapState) Snapshot() any    { return s.v }
func (s *snapState) Restore(snap any) { s.v = snap.(int) }

type script struct {
	seq []int
	pos int
}

func newFixture(cfg Config, m int) *fixture { return newFixtureSched(cfg, m, nil) }

// newFixtureSched builds the fixture; with a non-nil scheduler the stack
// is hooked into it, the controller's blocking is routed through it, and
// the racy-increment yield becomes a virtual decision point.
func newFixtureSched(cfg Config, m int, sc *sched.Scheduler) *fixture {
	f := &fixture{rec: trace.NewRecorder(), yield: runtime.Gosched}
	ctrl := cfg.New()
	opts := []core.StackOption{core.WithTracer(f.rec)}
	if sc != nil {
		if s, ok := ctrl.(sched.Schedulable); ok {
			s.SetBlocker(sc)
		}
		opts = append(opts, core.WithHook(sc))
		f.yield = sc.Step
	}
	f.stack = core.NewStack(ctrl, opts...)
	f.counters = make([]int, m)
	f.snaps = make([]*snapState, m)
	for i := 0; i < m; i++ {
		mp := core.NewMicroprotocol(fmt.Sprintf("cmp%d", i))
		if cfg.Snapshot {
			st := &snapState{}
			f.snaps[i] = st
			mp.SetSnapshotter(st)
		}
		h := mp.AddHandler("visit", f.visit(i))
		f.mps = append(f.mps, mp)
		f.handlers = append(f.handlers, h)
		f.events = append(f.events, core.NewEventType(fmt.Sprintf("cev%d", i)))
	}
	f.stack.Register(f.mps...)
	for i := range f.events {
		f.stack.Bind(f.events[i], f.handlers[i])
	}
	return f
}

// visit is the counter handler body for microprotocol i: the deliberately
// racy read–yield–write increment, then the script's next hop. Factored
// out so swapMP can give a replacement microprotocol the exact same
// behaviour against the same counter.
func (f *fixture) visit(i int) core.HandlerFunc {
	return func(ctx *core.Context, msg core.Message) error {
		s := msg.(*script)
		if f.snaps[i] != nil {
			f.snaps[i].v++
		} else {
			v := f.counters[i]
			f.yield()
			f.counters[i] = v + 1
		}
		if s.pos+1 < len(s.seq) {
			return ctx.Trigger(f.events[s.seq[s.pos+1]], &script{seq: s.seq, pos: s.pos + 1})
		}
		return nil
	}
}

// swapMP live-replaces counter microprotocol i with a same-behaviour
// successor while computations are running. Replace keeps the successor
// on its predecessor's version slot, so the two versions racing on the
// shared counter across the swap is exactly what the lost-update check
// exercises. The fixture's mp/handler tables are republished only after
// the swap installs: computations that compiled a spec against the old
// identity in the window get ReconfiguredError and retry (runScript).
func (f *fixture) swapMP(i int) error {
	next := core.NewMicroprotocol(fmt.Sprintf("cmp%dv2", i))
	if f.snaps[i] != nil {
		next.SetSnapshotter(f.snaps[i])
	}
	h := next.AddHandler("visit", f.visit(i))
	if err := f.stack.Reconfigure(func(e *core.Epoch) {
		e.Replace(f.mps[i].Name(), next)
	}); err != nil {
		return err
	}
	f.mps[i] = next
	f.handlers[i] = h
	return nil
}

// runScript runs one script computation, retrying when its spec raced a
// reconfiguration: ReconfiguredError means "rebuild the spec and retry",
// and the rebuild picks up the replacement identity once swapMP has
// republished it. The yield between attempts is a scheduling decision
// point under exploration, so the retry loop cannot starve the swap task.
func (f *fixture) runScript(kind Kind, seq []int) error {
	for tries := 0; ; tries++ {
		err := f.stack.External(f.spec(kind, seq), f.events[seq[0]], &script{seq: seq})
		var re *core.ReconfiguredError
		if !errors.As(err, &re) || tries >= 8 {
			return err
		}
		f.yield()
	}
}

func (f *fixture) spec(kind Kind, seq []int) *core.Spec {
	switch kind {
	case KindBound:
		bounds := map[*core.Microprotocol]int{}
		for _, i := range seq {
			bounds[f.mps[i]]++
		}
		return core.AccessBound(bounds)
	case KindRoute:
		g := core.NewRouteGraph().Root(f.handlers[seq[0]])
		for i := 0; i+1 < len(seq); i++ {
			g.Edge(f.handlers[seq[i]], f.handlers[seq[i+1]])
		}
		return core.Route(g)
	default:
		var mps []*core.Microprotocol
		for _, i := range seq {
			mps = append(mps, f.mps[i])
		}
		return core.Access(mps...)
	}
}

func (f *fixture) count(i int) int {
	if f.snaps[i] != nil {
		return f.snaps[i].v
	}
	return f.counters[i]
}

func runWorkload(t *testing.T, cfg Config, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := 2 + rng.Intn(3)
	f := newFixture(cfg, m)
	n := 3 + rng.Intn(8)
	scripts := make([][]int, n)
	want := make([]int, m)
	for i := range scripts {
		l := 1 + rng.Intn(5)
		seq := make([]int, l)
		for j := range seq {
			seq[j] = rng.Intn(m)
		}
		scripts[i] = seq
		for _, x := range seq {
			want[x]++
		}
	}
	var wg sync.WaitGroup
	for _, seq := range scripts {
		wg.Add(1)
		go func(seq []int) {
			defer wg.Done()
			if err := f.stack.External(f.spec(cfg.Kind, seq), f.events[seq[0]], &script{seq: seq}); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}(seq)
	}
	wg.Wait()
	for i, w := range want {
		if got := f.count(i); got != w {
			t.Errorf("seed %d: lost update on mp%d: %d != %d", seed, i, got, w)
		}
	}
	AssertInvariants(t, f.rec)
}

// AssertInvariants checks the two controller-independent invariants every
// recorded execution must satisfy, whatever faults were injected into it:
// conflict-serializability of the recorded handler executions (the
// isolation property) and lifecycle balance (every spawned computation
// completed or aborted). The chaos harness (internal/chaos) shares it
// with this battery.
func AssertInvariants(tb testing.TB, rec *trace.Recorder) {
	tb.Helper()
	rep := rec.Check()
	if !rep.Serializable {
		tb.Errorf("execution violates the isolation property (cycle %v)", rep.Cycle)
	}
	st := rec.Stats()
	if st.Spawned != st.Completed+st.Aborted {
		tb.Errorf("lifecycle imbalance: %d spawned, %d completed, %d aborted",
			st.Spawned, st.Completed, st.Aborted)
	}
}

func runUndeclared(t *testing.T, cfg Config) {
	t.Helper()
	f := newFixture(cfg, 2)
	err := f.stack.External(f.spec(cfg.Kind, []int{0}), f.events[1], &script{seq: []int{1}})
	var ue *core.UndeclaredError
	var nr *core.NoRouteError
	if !errors.As(err, &ue) && !errors.As(err, &nr) {
		t.Errorf("undeclared call returned %v, want UndeclaredError or NoRouteError", err)
	}
}
