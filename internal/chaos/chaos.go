// Package chaos is the fault-injection harness for the fault-containment
// layer (DESIGN.md §10): it drives a stack of counter microprotocols
// through randomized workloads while injecting panics, delays, and
// cancellations — inside handler bodies via the workload plans, and at
// the framework's dispatch yield points via the core.WithHook seam — and
// then interrogates the survivors.
//
// After the storm, three probes decide whether the controller contained
// every fault:
//
//   - A full-footprint probe computation with a generous deadline must
//     complete: if any injection wedged the controller or leaked a
//     version slot, the probe blocks at admission and times out.
//   - Stack.Close must drain and report balanced lifecycles (every begun
//     computation ended), and a post-close computation must be rejected
//     with core.ErrClosed.
//   - The recorded trace must stay conflict-serializable and balanced —
//     the same invariants cctest asserts for fault-free runs.
//
// Runs are reproducible: every random decision derives from Config.Seed.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Kind selects which Spec flavour the controller consumes (mirrors
// cctest.Kind).
type Kind int

// Spec flavours.
const (
	KindBasic Kind = iota // core.Access
	KindBound             // core.AccessBound
	KindRoute             // core.Route
)

// Config parameterizes one chaos run.
type Config struct {
	// New creates a fresh controller (one per run; never reused).
	New func() core.Controller
	// Kind is the Spec flavour to build for it.
	Kind Kind
	// Seed drives every random decision of the run.
	Seed int64
	// Computations is the number of concurrent computations (default 40).
	Computations int
	// MPs is the number of counter microprotocols (default 4).
	MPs int
	// PanicProb is the per-yield-point probability of an injected panic
	// (default 0.05).
	PanicProb float64
	// DelayProb is the per-yield-point probability of an injected delay
	// (default 0.10).
	DelayProb float64
	// HandlerPanicProb is the per-computation probability that one of its
	// handler executions panics mid-body (default 0.20).
	HandlerPanicProb float64
	// CancelProb is the per-computation probability of running under a
	// tiny Spec.WithTimeout deadline (default 0.20).
	CancelProb float64
	// Timeout is the tiny deadline those computations get (default 2ms).
	Timeout time.Duration
	// ProbeTimeout bounds the post-storm probe and the drain (default 10s);
	// hitting it means a wedged controller or a leaked version slot.
	ProbeTimeout time.Duration
	// Snapshot attaches snapshotters to every microprotocol (required by
	// rollback controllers).
	Snapshot bool
}

// Report is the outcome of one chaos run. Err flattens it into the
// verdict the acceptance criteria ask for.
type Report struct {
	Controller   string
	Seed         int64
	Computations int

	// Per-computation outcomes.
	Completed int // returned nil
	Panicked  int // returned a *core.PanicError
	TimedOut  int // returned a *core.DeadlineError
	Failed    int // returned anything else (a containment bug)
	FirstFail error

	// Injection counters.
	HookPanics    int
	HookDelays    int
	HandlerPanics int
	Cancels       int

	// Invariants.
	Serializable bool
	Cycle        []uint64
	Stats        trace.Stats
	ProbeErr     error // nil: no wedged controller, no leaked version slot
	CloseErr     error // nil: drained with balanced lifecycles
	RejectErr    error // want core.ErrClosed from the post-close computation

	// Recorder holds the full trace for post-mortems.
	Recorder *trace.Recorder
}

// Err returns nil when the run satisfied every containment invariant,
// and an error joining each violated one otherwise.
func (r *Report) Err() error {
	var errs []error
	if !r.Serializable {
		errs = append(errs, fmt.Errorf("chaos[%s seed=%d]: surviving computations violate the isolation property (cycle %v)",
			r.Controller, r.Seed, r.Cycle))
	}
	if r.Stats.Spawned != r.Stats.Completed+r.Stats.Aborted {
		errs = append(errs, fmt.Errorf("chaos[%s seed=%d]: trace lifecycle imbalance: %d spawned, %d completed, %d aborted",
			r.Controller, r.Seed, r.Stats.Spawned, r.Stats.Completed, r.Stats.Aborted))
	}
	if r.ProbeErr != nil {
		errs = append(errs, fmt.Errorf("chaos[%s seed=%d]: controller wedged or version slot leaked — probe failed: %w",
			r.Controller, r.Seed, r.ProbeErr))
	}
	if r.CloseErr != nil {
		errs = append(errs, fmt.Errorf("chaos[%s seed=%d]: close: %w", r.Controller, r.Seed, r.CloseErr))
	}
	if !errors.Is(r.RejectErr, core.ErrClosed) {
		errs = append(errs, fmt.Errorf("chaos[%s seed=%d]: post-close computation returned %v, want ErrClosed",
			r.Controller, r.Seed, r.RejectErr))
	}
	if r.Failed > 0 {
		errs = append(errs, fmt.Errorf("chaos[%s seed=%d]: %d computations failed outside the fault model, first: %w",
			r.Controller, r.Seed, r.Failed, r.FirstFail))
	}
	return errors.Join(errs...)
}

// String summarizes the run for logs.
func (r *Report) String() string {
	return fmt.Sprintf("chaos[%s seed=%d]: %d computations — %d completed, %d panicked, %d timed out, %d failed; injected %d hook panics, %d delays, %d handler panics, %d deadlines; serializable=%v probe=%v close=%v",
		r.Controller, r.Seed, r.Computations, r.Completed, r.Panicked, r.TimedOut, r.Failed,
		r.HookPanics, r.HookDelays, r.HandlerPanics, r.Cancels,
		r.Serializable, r.ProbeErr == nil, r.CloseErr == nil)
}

// injected is the panic value the hook throws; keeping it a distinct type
// lets tests distinguish injected faults from real bugs.
type injected struct{ point core.YieldPoint }

func (i injected) String() string {
	return fmt.Sprintf("chaos: injected panic at yield point %d", i.point)
}

// faultHook injects faults at the framework's dispatch yield points. It
// implements core.Hook; the task-tracking half is a no-op (goroutines run
// natively), only Yield misbehaves.
type faultHook struct {
	mu        sync.Mutex
	rng       *rand.Rand
	panicProb float64
	delayProb float64
	panics    int
	delays    int
	armed     atomic.Bool
}

func (h *faultHook) TaskSpawn(any) any { return nil }
func (h *faultHook) TaskBegin(any)     {}
func (h *faultHook) TaskEnd(any)       {}
func (h *faultHook) WaitTasks(any)     {}

func (h *faultHook) Yield(p core.YieldPoint) {
	if !h.armed.Load() {
		return
	}
	h.mu.Lock()
	roll := h.rng.Float64()
	var doPanic bool
	var delay time.Duration
	switch {
	case roll < h.panicProb:
		doPanic = true
		h.panics++
	case roll < h.panicProb+h.delayProb:
		delay = time.Duration(50+h.rng.Intn(300)) * time.Microsecond
		h.delays++
	}
	h.mu.Unlock()
	if doPanic {
		panic(injected{point: p})
	}
	if delay > 0 {
		time.Sleep(delay)
	}
}

// script is one computation's workload plan: the chain of microprotocols
// to visit and the step whose handler execution panics (-1 for none).
type script struct {
	seq     []int
	pos     int
	panicAt int
}

// fixture is the chaos stack: m counter microprotocols whose visit
// handlers chain through the script and execute its planned faults.
type fixture struct {
	stack    *core.Stack
	ctrl     core.Controller
	rec      *trace.Recorder
	hook     *faultHook
	mps      []*core.Microprotocol
	events   []*core.EventType
	handlers []*core.Handler
	snaps    []*snapState
	counters []atomic.Int64

	handlerPanics atomic.Int64
}

// snapState is unsynchronized on purpose, exactly like the cctest
// fixture: cross-computation safety of v must come from the controller
// under test, even mid-chaos.
type snapState struct{ v int }

func (s *snapState) Snapshot() any    { return s.v }
func (s *snapState) Restore(snap any) { s.v = snap.(int) }

func newFixture(cfg Config, hook *faultHook) *fixture {
	f := &fixture{
		rec:      trace.NewRecorder(),
		hook:     hook,
		snaps:    make([]*snapState, cfg.MPs),
		counters: make([]atomic.Int64, cfg.MPs),
	}
	f.ctrl = cfg.New()
	f.stack = core.NewStack(f.ctrl, core.WithName("chaos"), core.WithTracer(f.rec), core.WithHook(hook))
	for i := 0; i < cfg.MPs; i++ {
		i := i
		mp := core.NewMicroprotocol(fmt.Sprintf("chaos%d", i))
		if cfg.Snapshot {
			st := &snapState{}
			f.snaps[i] = st
			mp.SetSnapshotter(st)
		}
		h := mp.AddHandler("visit", func(ctx *core.Context, msg core.Message) error {
			s := msg.(*script)
			if f.snaps[i] != nil {
				f.snaps[i].v++
			} else {
				f.counters[i].Add(1)
			}
			if s.panicAt == s.pos {
				f.handlerPanics.Add(1)
				panic(fmt.Sprintf("chaos: planned handler panic at step %d", s.pos))
			}
			if s.pos+1 < len(s.seq) {
				return ctx.Trigger(f.events[s.seq[s.pos+1]],
					&script{seq: s.seq, pos: s.pos + 1, panicAt: s.panicAt})
			}
			return nil
		})
		f.mps = append(f.mps, mp)
		f.handlers = append(f.handlers, h)
		f.events = append(f.events, core.NewEventType(fmt.Sprintf("chaosev%d", i)))
	}
	f.stack.Register(f.mps...)
	for i := range f.events {
		f.stack.Bind(f.events[i], f.handlers[i])
	}
	return f
}

// spec builds the Spec flavour for one script.
func (f *fixture) spec(kind Kind, seq []int) *core.Spec {
	switch kind {
	case KindBound:
		bounds := map[*core.Microprotocol]int{}
		for _, i := range seq {
			bounds[f.mps[i]]++
		}
		return core.AccessBound(bounds)
	case KindRoute:
		g := core.NewRouteGraph().Root(f.handlers[seq[0]])
		for i := 0; i+1 < len(seq); i++ {
			g.Edge(f.handlers[seq[i]], f.handlers[seq[i+1]])
		}
		return core.Route(g)
	default:
		var mps []*core.Microprotocol
		for _, i := range seq {
			mps = append(mps, f.mps[i])
		}
		return core.Access(mps...)
	}
}

// Run executes one chaos run and reports what survived.
func Run(cfg Config) (*Report, error) {
	if cfg.New == nil {
		return nil, errors.New("chaos: Config.New required")
	}
	if cfg.Computations <= 0 {
		cfg.Computations = 40
	}
	if cfg.MPs <= 0 {
		cfg.MPs = 4
	}
	if cfg.PanicProb == 0 {
		cfg.PanicProb = 0.05
	}
	if cfg.DelayProb == 0 {
		cfg.DelayProb = 0.10
	}
	if cfg.HandlerPanicProb == 0 {
		cfg.HandlerPanicProb = 0.20
	}
	if cfg.CancelProb == 0 {
		cfg.CancelProb = 0.20
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 10 * time.Second
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	hook := &faultHook{
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		panicProb: cfg.PanicProb,
		delayProb: cfg.DelayProb,
	}
	hook.armed.Store(true)
	f := newFixture(cfg, hook)
	rep := &Report{
		Controller:   f.ctrl.Name(),
		Seed:         cfg.Seed,
		Computations: cfg.Computations,
		Recorder:     f.rec,
	}

	// Plan the workload single-threaded (reproducibility), then unleash it.
	type plan struct {
		seq     []int
		panicAt int
		timeout time.Duration
	}
	plans := make([]plan, cfg.Computations)
	for i := range plans {
		l := 1 + rng.Intn(4)
		seq := make([]int, l)
		for j := range seq {
			seq[j] = rng.Intn(cfg.MPs)
		}
		p := plan{seq: seq, panicAt: -1}
		if rng.Float64() < cfg.HandlerPanicProb {
			p.panicAt = rng.Intn(l)
		}
		if rng.Float64() < cfg.CancelProb {
			p.timeout = cfg.Timeout
			rep.Cancels++
		}
		plans[i] = p
	}

	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, p := range plans {
		wg.Add(1)
		go func(p plan) {
			defer wg.Done()
			spec := f.spec(cfg.Kind, p.seq)
			if p.timeout > 0 {
				spec = spec.WithTimeout(p.timeout)
			}
			err := f.stack.External(spec, f.events[p.seq[0]], &script{seq: p.seq, panicAt: p.panicAt})
			mu.Lock()
			defer mu.Unlock()
			var pe *core.PanicError
			var de *core.DeadlineError
			switch {
			case err == nil:
				rep.Completed++
			case errors.As(err, &pe):
				rep.Panicked++
			case errors.As(err, &de):
				rep.TimedOut++
			default:
				rep.Failed++
				if rep.FirstFail == nil {
					rep.FirstFail = err
				}
			}
		}(p)
	}
	wg.Wait()

	hook.armed.Store(false)
	rep.HookPanics = hook.panics
	rep.HookDelays = hook.delays
	rep.HandlerPanics = int(f.handlerPanics.Load())

	// Probe: a full-footprint computation with a generous deadline. If any
	// injection wedged the controller or leaked a version slot, admission
	// never comes and the probe times out instead of hanging the harness.
	probeSeq := make([]int, cfg.MPs)
	for i := range probeSeq {
		probeSeq[i] = i
	}
	probeSpec := f.spec(cfg.Kind, probeSeq).WithTimeout(cfg.ProbeTimeout)
	rep.ProbeErr = f.stack.External(probeSpec, f.events[0], &script{seq: probeSeq, panicAt: -1})

	// Graceful drain with lifecycle verification, then prove the stack
	// rejects new work.
	rep.CloseErr = f.stack.Close()
	rep.RejectErr = f.stack.External(f.spec(cfg.Kind, []int{0}), f.events[0], &script{seq: []int{0}, panicAt: -1})

	check := f.rec.Check()
	rep.Serializable = check.Serializable
	rep.Cycle = check.Cycle
	rep.Stats = f.rec.Stats()
	return rep, nil
}
