package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// stormSeeds returns the seed battery: CHAOS_SEED pins a single seed
// (replay), CHAOS_SEEDS sets the count, CHAOS_DEEP=1 runs the full
// 20-seed acceptance battery, and the default keeps `go test ./...`
// quick with 3 seeds per backend.
func stormSeeds(t *testing.T) []int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", v, err)
		}
		return []int64{seed}
	}
	n := 3
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			t.Fatalf("CHAOS_SEEDS=%q: want a positive integer", v)
		}
		n = parsed
	} else if os.Getenv("CHAOS_DEEP") == "1" {
		n = 20
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(1000 + i)
	}
	return seeds
}

// TestDistributedStorms drives seeded fault storms over both transport
// substrates: every seed must satisfy every distributed invariant (see
// DReport.Err) on the deterministic simulator and on real UDP sockets.
func TestDistributedStorms(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed chaos storm")
	}
	for _, backend := range Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			for _, seed := range stormSeeds(t) {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					rep, err := DRun(DConfig{Backend: backend, Seed: seed})
					if err != nil {
						t.Fatal(err)
					}
					t.Log(rep)
					if err := rep.Err(); err != nil {
						t.Fatal(err)
					}
					if rep.WritesAcked == 0 {
						t.Fatal("storm acked no writes; the harness exercised nothing")
					}
				})
			}
		})
	}
}

// TestDistributedStormWithUpgrades races live protocol upgrades against
// the fault storm: mid-storm ProposeUpgrade flips ride the total order
// while transports crash, partitions isolate minorities, and messages
// drop. Every acked bump must land on every replica — same app version,
// same view proto, same stack epoch — with zero acked-write loss across
// the epoch swaps.
func TestDistributedStormWithUpgrades(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed chaos storm")
	}
	for _, backend := range Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			var proposed int
			for _, seed := range stormSeeds(t) {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					rep, err := DRun(DConfig{Backend: backend, Seed: seed, Upgrades: 2})
					if err != nil {
						t.Fatal(err)
					}
					t.Log(rep)
					if err := rep.Err(); err != nil {
						t.Fatal(err)
					}
					if rep.WritesAcked == 0 {
						t.Fatal("storm acked no writes; the harness exercised nothing")
					}
					proposed += rep.UpgradesProposed
				})
			}
			if proposed == 0 {
				t.Error("no upgrade was ever acked; the battery exercised no epoch swaps")
			}
		})
	}
}

// TestDistributedStormReplaysDeterministically: the same seed must yield
// the same fault schedule (crash/partition/heal/rate-flip counts) on the
// deterministic backend, so failures can be replayed via CHAOS_SEED.
func TestDistributedStormReplaysDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed chaos storm")
	}
	cfg := DConfig{Backend: "simnet", Seed: 424242, Steps: 8, StepPause: 10 * time.Millisecond}
	a, err := DRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	b, err := DRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if a.Crashes != b.Crashes || a.Partitions != b.Partitions || a.Heals != b.Heals || a.RateFlips != b.RateFlips {
		t.Fatalf("fault schedule diverged across replays:\n  %v\n  %v", a, b)
	}
}

// TestDRunRejectsBadConfig pins the config validation edges.
func TestDRunRejectsBadConfig(t *testing.T) {
	if _, err := DRun(DConfig{Sites: 2}); err == nil {
		t.Fatal("2-site storm must be rejected (no crash-tolerant majority)")
	}
	if _, err := DRun(DConfig{Backend: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown backend must be rejected")
	}
}
