// Distributed chaos (dchaos): seeded fault storms over a full N-site
// replicated cluster, complementing this package's single-stack
// controller storms. Where chaos.Run attacks one stack's concurrency
// controller, DRun attacks the distributed protocol: it boots N kvstore
// replicas on a real transport substrate (deterministic simnet or real
// UDP sockets), wraps the substrate in faultnet, and drives a seeded
// storm of transport crash/restarts, majority-preserving partitions and
// message chaos (loss, duplication, reordering, delay) while a writer
// keeps acknowledging operations.
//
// After the storm every fault is lifted and the cluster must prove
// itself against the distributed invariants:
//
//   - Post-heal convergence: every replica ends with the same map.
//   - No acked-write loss: every write acknowledged during the storm is
//     present, with its written value, on every replica.
//   - No split-brain: every replica reports the same final view.
//   - No wedged site: a post-storm write through every replica succeeds.
//   - Clean drain: Stop on every replica, then zero computation errors.
//
// Storm decisions all derive from DConfig.Seed, so a failing run can be
// replayed; timing on a real transport is inherently not reproducible,
// only the fault schedule is.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"time"

	"repro/internal/gc"
	"repro/internal/kvstore"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/faultnet"
	"repro/internal/transport/udpnet"
)

// DConfig parameterizes one distributed storm.
type DConfig struct {
	// Backend selects the substrate: "simnet" (default) or "udpnet".
	Backend string
	// Sites is the cluster size (default 5; minimum 3).
	Sites int
	// Seed drives every storm decision.
	Seed int64
	// Steps is the number of storm steps (default 12).
	Steps int
	// Rates are the message-chaos rates toggled during the storm
	// (default: Drop 0.15, Dup 0.05, Reorder 0.05, Delay 0.05).
	// Corruption stays off here by design: the link CRC is the integrity
	// boundary and rejected frames look like loss, which Drop covers.
	Rates faultnet.Rates
	// StepPause separates storm steps (default 25ms).
	StepPause time.Duration
	// SettleTimeout bounds post-heal convergence (default 30s).
	SettleTimeout time.Duration
	// Upgrades is the number of mid-storm protocol-version bumps
	// (Site.ProposeUpgrade) raced against the faults; each acked bump
	// makes every surviving replica hot-swap its app microprotocol
	// through a live epoch swap. 0 disables upgrades.
	Upgrades int
}

// DReport is the outcome of one distributed storm.
type DReport struct {
	Backend string
	Seed    int64
	Sites   int

	// Storm activity.
	Crashes, Restarts, Partitions, Heals, RateFlips int
	WritesAcked, WritesFailed                       int
	UpgradesProposed, UpgradesFailed                int

	// Invariant outcomes.
	Converged   bool               // all replicas ended with the same map
	LostWrites  []string           // acked keys missing or wrong on some replica
	FinalViews  []string           // one per site; all must match
	WedgedSites []transport.NodeID // sites whose post-storm write failed
	SiteErrs    []error            // computation errors surfaced after Stop
	SettleErr   error              // non-nil: convergence deadline passed

	// Upgrade invariants (populated when DConfig.Upgrades > 0).
	WantProto       uint16   // highest acked protocol bump (0: none acked)
	FinalProto      uint16   // converged app version reported by site 0
	ProtoDivergence []string // sites disagreeing on app version or stack epoch
}

// Err returns nil when the storm satisfied every distributed invariant.
func (r *DReport) Err() error {
	var errs []error
	tag := fmt.Sprintf("dchaos[%s seed=%d]", r.Backend, r.Seed)
	if r.SettleErr != nil {
		errs = append(errs, fmt.Errorf("%s: %w", tag, r.SettleErr))
	}
	if !r.Converged {
		errs = append(errs, fmt.Errorf("%s: replicas did not converge post-heal", tag))
	}
	if len(r.LostWrites) > 0 {
		errs = append(errs, fmt.Errorf("%s: acked writes lost: %v", tag, r.LostWrites))
	}
	for i := 1; i < len(r.FinalViews); i++ {
		if r.FinalViews[i] != r.FinalViews[0] {
			errs = append(errs, fmt.Errorf("%s: split-brain: site 0 sees %s, site %d sees %s",
				tag, r.FinalViews[0], i, r.FinalViews[i]))
			break
		}
	}
	if len(r.WedgedSites) > 0 {
		errs = append(errs, fmt.Errorf("%s: wedged sites (post-storm write failed): %v", tag, r.WedgedSites))
	}
	for _, err := range r.SiteErrs {
		errs = append(errs, fmt.Errorf("%s: site error: %w", tag, err))
	}
	if r.WantProto > 0 && r.FinalProto < r.WantProto {
		errs = append(errs, fmt.Errorf("%s: acked upgrade lost: converged on app v%d, want v%d",
			tag, r.FinalProto, r.WantProto))
	}
	for _, msg := range r.ProtoDivergence {
		errs = append(errs, fmt.Errorf("%s: upgrade divergence: %s", tag, msg))
	}
	return errors.Join(errs...)
}

// String summarizes the storm for logs.
func (r *DReport) String() string {
	s := fmt.Sprintf("dchaos[%s seed=%d]: %d sites — %d crashes, %d restarts, %d partitions, %d heals, %d rate flips; %d writes acked, %d failed; converged=%v",
		r.Backend, r.Seed, r.Sites, r.Crashes, r.Restarts, r.Partitions, r.Heals, r.RateFlips,
		r.WritesAcked, r.WritesFailed, r.Converged)
	if r.UpgradesProposed+r.UpgradesFailed > 0 {
		s += fmt.Sprintf("; %d upgrades acked, %d failed, app v%d", r.UpgradesProposed, r.UpgradesFailed, r.FinalProto)
	}
	return s
}

// fabric abstracts one cluster substrate: which transport hosts each
// site, and how faults reach every wrapper.
type fabric struct {
	site     func(id transport.NodeID) transport.Transport
	wrappers []*faultnet.Net // every distinct wrapper (one for simnet, N for udpnet)
	crash    func(id transport.NodeID)
	restart  func(id transport.NodeID) bool
	close    func()
}

func newFabric(backend string, sites int, seed int64) (*fabric, error) {
	switch backend {
	case "", "simnet":
		inner := simnet.New(simnet.Config{
			Nodes: sites, Seed: seed,
			MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
		})
		fn := faultnet.New(faultnet.Config{Inner: inner, Seed: seed})
		return &fabric{
			site:     func(transport.NodeID) transport.Transport { return fn },
			wrappers: []*faultnet.Net{fn},
			crash:    func(id transport.NodeID) { fn.Crash(id) },
			restart:  fn.Restart,
			close:    fn.Close,
		}, nil
	case "udpnet":
		nets, err := udpnet.NewCluster(sites)
		if err != nil {
			return nil, err
		}
		wrappers := make([]*faultnet.Net, sites)
		for i, n := range nets {
			// One wrapper per node process, all sharing the seed: the
			// per-directed-link RNG keying makes the fault streams
			// identical to the single-wrapper simnet arrangement.
			wrappers[i] = faultnet.New(faultnet.Config{Inner: n, Seed: seed})
		}
		return &fabric{
			site:     func(id transport.NodeID) transport.Transport { return wrappers[id] },
			wrappers: wrappers,
			crash:    func(id transport.NodeID) { wrappers[id].Crash(id) },
			restart:  func(id transport.NodeID) bool { return wrappers[id].Restart(id) },
			close: func() {
				for _, w := range wrappers {
					w.Close()
				}
			},
		}, nil
	default:
		return nil, fmt.Errorf("dchaos: unknown backend %q", backend)
	}
}

func (f *fabric) partition(groups ...[]transport.NodeID) {
	for _, w := range f.wrappers {
		w.Partition(groups...)
	}
}

func (f *fabric) heal() {
	for _, w := range f.wrappers {
		w.Heal()
	}
}

func (f *fabric) setRates(r faultnet.Rates) {
	for _, w := range f.wrappers {
		w.SetRates(r)
	}
}

// DRun executes one distributed storm and reports what survived.
func DRun(cfg DConfig) (*DReport, error) {
	if cfg.Sites == 0 {
		cfg.Sites = 5
	}
	if cfg.Sites < 3 {
		return nil, errors.New("dchaos: need at least 3 sites")
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 12
	}
	if cfg.Rates == (faultnet.Rates{}) {
		cfg.Rates = faultnet.Rates{Drop: 0.15, Dup: 0.05, Reorder: 0.05, Delay: 0.05}
	}
	if cfg.StepPause <= 0 {
		cfg.StepPause = 25 * time.Millisecond
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 30 * time.Second
	}
	backend := cfg.Backend
	if backend == "" {
		backend = "simnet"
	}

	fab, err := newFabric(backend, cfg.Sites, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer fab.close()

	rep := &DReport{Backend: backend, Seed: cfg.Seed, Sites: cfg.Sites}
	ids := make([]transport.NodeID, cfg.Sites)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	view := gc.NewView(ids...)
	stores := make([]*kvstore.Store, cfg.Sites)
	for i, id := range ids {
		stores[i] = kvstore.New(kvstore.Config{
			Net: fab.site(id), ID: id, InitialView: view,
			OpTimeout: 5 * time.Second,
			Site: gc.Config{
				FDInterval: 10 * time.Millisecond, SuspectAfter: 80 * time.Millisecond,
				RTO: 20 * time.Millisecond,
			},
		})
		stores[i].Start()
	}
	stopped := false
	defer func() {
		if !stopped {
			for _, s := range stores {
				s.Stop()
			}
		}
	}()

	// Storm state: which sites' transport nodes are down, and which sit
	// on the minority side of the current partition. Every step keeps a
	// healthy majority — at least quorum sites up and mutually connected
	// — so the group as a whole always makes progress.
	rng := rand.New(rand.NewSource(cfg.Seed))
	quorum := cfg.Sites/2 + 1
	crashed := make(map[transport.NodeID]bool)
	minority := make(map[transport.NodeID]bool)
	chaosOn := false
	healthy := func() []transport.NodeID {
		var out []transport.NodeID
		for _, id := range ids {
			if !crashed[id] && !minority[id] {
				out = append(out, id)
			}
		}
		return out
	}
	ledger := make(map[string]string) // acked writes: key → value
	write := func(tag string) {
		h := healthy()
		if len(h) < quorum {
			return
		}
		site := h[rng.Intn(len(h))]
		key := fmt.Sprintf("%s-%d", tag, rep.WritesAcked+rep.WritesFailed)
		val := fmt.Sprintf("by-%d", site)
		if err := stores[site].Put(key, val); err != nil {
			rep.WritesFailed++
			return
		}
		rep.WritesAcked++
		ledger[key] = val
	}

	// Upgrade schedule: which storm steps additionally propose a protocol
	// bump through a healthy site. Versions ascend from 2; '^' rides the
	// same total order as every membership op, so survivors converge even
	// when the proposer is immediately partitioned or crashed afterwards.
	upgradeAt := make(map[int]bool, cfg.Upgrades)
	for len(upgradeAt) < cfg.Upgrades && len(upgradeAt) < cfg.Steps {
		upgradeAt[rng.Intn(cfg.Steps)] = true
	}
	nextProto := uint16(2)
	propose := func() {
		h := healthy()
		if len(h) < quorum {
			return
		}
		site := h[rng.Intn(len(h))]
		p := nextProto
		nextProto++
		if err := stores[site].Site().ProposeUpgrade(p); err != nil {
			rep.UpgradesFailed++
			return
		}
		rep.UpgradesProposed++
		rep.WantProto = p
	}

	write("warmup")
	for step := 0; step < cfg.Steps; step++ {
		switch rng.Intn(6) {
		case 0: // crash a transport node, keeping a healthy majority
			h := healthy()
			if len(h) > quorum {
				id := h[rng.Intn(len(h))]
				fab.crash(id)
				crashed[id] = true
				rep.Crashes++
			}
		case 1: // restart a crashed node
			for _, id := range ids {
				if crashed[id] {
					fab.restart(id)
					delete(crashed, id)
					rep.Restarts++
					break
				}
			}
		case 2: // partition off a minority, healing any previous split
			fab.heal()
			minority = make(map[transport.NodeID]bool)
			k := 1 + rng.Intn((cfg.Sites-1)/2)
			perm := rng.Perm(cfg.Sites)
			var minor []transport.NodeID
			for _, i := range perm[:k] {
				minor = append(minor, ids[i])
				minority[ids[i]] = true
			}
			if len(healthy()) >= quorum {
				var major []transport.NodeID
				for _, id := range ids {
					if !minority[id] {
						major = append(major, id)
					}
				}
				fab.partition(major, minor)
				rep.Partitions++
			} else { // crashes already ate the margin: stay healed
				minority = make(map[transport.NodeID]bool)
			}
		case 3: // heal
			fab.heal()
			minority = make(map[transport.NodeID]bool)
			rep.Heals++
		case 4: // toggle message chaos
			chaosOn = !chaosOn
			if chaosOn {
				fab.setRates(cfg.Rates)
			} else {
				fab.setRates(faultnet.Rates{})
			}
			rep.RateFlips++
		case 5: // write burst
			write("burst")
			write("burst")
		}
		if upgradeAt[step] {
			propose()
		}
		write("step")
		time.Sleep(cfg.StepPause)
	}

	// Lift every fault and let the cluster settle.
	for _, id := range ids {
		if crashed[id] {
			fab.restart(id)
			delete(crashed, id)
			rep.Restarts++
		}
	}
	fab.heal()
	fab.setRates(faultnet.Rates{})

	// Wedge probe: a write through every site must complete — this
	// exercises the full stack (admission, consensus, delivery) per site.
	for _, id := range ids {
		key := fmt.Sprintf("probe-%d", id)
		if err := stores[id].Put(key, "alive"); err != nil {
			rep.WedgedSites = append(rep.WedgedSites, id)
		} else {
			ledger[key] = "alive"
			rep.WritesAcked++
		}
	}

	// Convergence: every replica must reach the same map, containing
	// every acked write.
	deadline := time.Now().Add(cfg.SettleTimeout)
	for {
		ref := stores[0].SnapshotMap()
		same := true
		for _, s := range stores[1:] {
			if !reflect.DeepEqual(ref, s.SnapshotMap()) {
				same = false
				break
			}
		}
		// Every acked protocol bump must land on every replica: same app
		// version everywhere, at least the highest acked one.
		for _, s := range stores {
			if v := s.Site().AppVersion(); v < rep.WantProto || (rep.WantProto > 0 && v != stores[0].Site().AppVersion()) {
				same = false
				break
			}
		}
		if same {
			rep.Converged = true
			break
		}
		if time.Now().After(deadline) {
			rep.SettleErr = fmt.Errorf("convergence deadline (%v) passed", cfg.SettleTimeout)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, s := range stores {
		m := s.SnapshotMap()
		for k, v := range ledger {
			if got, ok := m[k]; !ok || got != v {
				rep.LostWrites = append(rep.LostWrites, k)
			}
		}
	}
	sort.Strings(rep.LostWrites)
	rep.LostWrites = dedupStrings(rep.LostWrites)
	for _, s := range stores {
		rep.FinalViews = append(rep.FinalViews, s.Site().View().String())
	}
	// Upgrade convergence: every replica must agree on the app version,
	// the view's protocol field (also covered by the split-brain check —
	// View.String renders it), and the stack epoch: one live swap per
	// applied bump, identical everywhere because '^' is totally ordered.
	rep.FinalProto = stores[0].Site().AppVersion()
	refEpoch := stores[0].Site().Epoch()
	for i, s := range stores {
		if v := s.Site().AppVersion(); v != rep.FinalProto {
			rep.ProtoDivergence = append(rep.ProtoDivergence,
				fmt.Sprintf("site %d runs app v%d, site 0 runs v%d", i, v, rep.FinalProto))
		}
		if p := s.Site().View().Proto(); rep.WantProto > 0 && p != rep.FinalProto {
			rep.ProtoDivergence = append(rep.ProtoDivergence,
				fmt.Sprintf("site %d view proto v%d does not match app v%d", i, p, rep.FinalProto))
		}
		if e := s.Site().Epoch(); e != refEpoch {
			rep.ProtoDivergence = append(rep.ProtoDivergence,
				fmt.Sprintf("site %d at stack epoch %d, site 0 at %d", i, e, refEpoch))
		}
	}

	// Clean drain: Stop everywhere, then collect computation errors.
	stopped = true
	for _, s := range stores {
		s.Stop()
	}
	for i, s := range stores {
		for _, err := range s.Errs() {
			rep.SiteErrs = append(rep.SiteErrs, fmt.Errorf("site %d: %w", i, err))
		}
	}
	return rep, nil
}

func dedupStrings(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Backends lists the substrates DRun accepts, for battery tests.
func Backends() []string { return []string{"simnet", "udpnet"} }
