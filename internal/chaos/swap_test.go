package chaos_test

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/cc"
	"repro/internal/cctest"
	"repro/internal/chaos"
	"repro/internal/core"
)

// swapVariants are the swap-safe controllers: the four VCA reconfigurers
// plus Serial (swap-safe by construction — it holds no per-microprotocol
// state that a Replace could fork). TSO and WaitDie are excluded: their
// pointer-keyed lock tables are not epoch-aware.
var swapVariants = []struct {
	name string
	new  func() core.Controller
	kind chaos.Kind
}{
	{"serial", func() core.Controller { return cc.NewSerial() }, chaos.KindBasic},
	{"vca-basic", func() core.Controller { return cc.NewVCABasic() }, chaos.KindBasic},
	{"vca-bound", func() core.Controller { return cc.NewVCABound() }, chaos.KindBound},
	{"vca-route", func() core.Controller { return cc.NewVCARoute() }, chaos.KindRoute},
	{"vca-rw", func() core.Controller { return cc.NewVCARW() }, chaos.KindBasic},
}

// swapSeeds returns the storm seeds: ten by default (the acceptance
// battery), many under CHAOS_DEEP=1 (nightly), or exactly CHAOS_SEED
// when set (reproducing one reported failure).
func swapSeeds(t *testing.T) []int64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		return []int64{v}
	}
	n := 10
	if os.Getenv("CHAOS_DEEP") != "" {
		n = 40
	} else if testing.Short() {
		n = 2
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// TestSwapStorm is the acceptance gate for live reconfiguration under
// fire: across every swap-safe controller and a battery of seeds,
// rotating hot swaps raced against panics, delays, and deadlines must
// commit every epoch, drain every superseded one in balance, never
// dispatch into a retired epoch, and lose zero acked writes across
// versions. A failing seed is re-runnable alone via CHAOS_SEED=<n>.
func TestSwapStorm(t *testing.T) {
	for _, v := range swapVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range swapSeeds(t) {
				rep, err := chaos.SwapRun(chaos.SwapConfig{
					New:  v.new,
					Kind: v.kind,
					Seed: seed,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				t.Log(rep)
				if err := rep.Err(); err != nil {
					t.Error(err)
				}
				cctest.AssertInvariants(t, rep.Recorder)
			}
		})
	}
}

// TestSwapStormInjects is a meta-test on the harness itself: across a few
// seeds the storms must actually race swaps against live computations —
// otherwise TestSwapStorm would vacuously pass on an idle stack. Spawn
// retries after a ReconfiguredError prove a swap landed between a spec
// compile and its admission; handler executions on epochs other than the
// first prove post-swap traffic ran.
func TestSwapStormInjects(t *testing.T) {
	var hookPanics, handlerPanics, respawns, swapFaults, completed int
	for seed := int64(0); seed < 6; seed++ {
		rep, err := chaos.SwapRun(chaos.SwapConfig{
			New:  func() core.Controller { return cc.NewVCABasic() },
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.FinalEpoch != uint64(1+rep.Swaps) {
			t.Fatalf("seed %d: final epoch %d, want %d", seed, rep.FinalEpoch, 1+rep.Swaps)
		}
		hookPanics += rep.HookPanics
		handlerPanics += rep.HandlerPanics
		respawns += rep.Respawns
		swapFaults += rep.SwapFaults
		completed += rep.Completed
	}
	if hookPanics == 0 {
		t.Error("no hook panics injected across 6 storms")
	}
	if handlerPanics == 0 {
		t.Error("no handler panics injected across 6 storms")
	}
	if respawns == 0 {
		t.Error("no spawn ever raced a swap across 6 storms — swaps are not overlapping the workload")
	}
	if completed == 0 {
		t.Error("no computation completed across 6 storms")
	}
	_ = swapFaults // hook-faulted reconfigurations are probability-dependent; respawns carry the overlap proof
}
