package chaos_test

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/cc"
	"repro/internal/cctest"
	"repro/internal/chaos"
	"repro/internal/core"
)

// variants are the isolating controllers the chaos harness must not be
// able to wedge. None is excluded: it provides no isolation, so the
// serializability half of the verdict does not apply to it.
var variants = []struct {
	name     string
	new      func() core.Controller
	kind     chaos.Kind
	snapshot bool
}{
	{"serial", func() core.Controller { return cc.NewSerial() }, chaos.KindBasic, false},
	{"vca-basic", func() core.Controller { return cc.NewVCABasic() }, chaos.KindBasic, false},
	{"vca-bound", func() core.Controller { return cc.NewVCABound() }, chaos.KindBound, false},
	{"vca-route", func() core.Controller { return cc.NewVCARoute() }, chaos.KindRoute, false},
	{"vca-rw", func() core.Controller { return cc.NewVCARW() }, chaos.KindBasic, false},
	{"tso", func() core.Controller { return cc.NewTSO() }, chaos.KindBasic, true},
	{"wait-die", func() core.Controller { return cc.NewWaitDie() }, chaos.KindBasic, true},
}

// seeds returns the chaos seeds to run: a couple by default (CI smoke),
// many under CHAOS_DEEP=1 (nightly), or exactly CHAOS_SEED when set
// (reproducing one reported failure).
func seeds(t *testing.T) []int64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		return []int64{v}
	}
	n := 3
	if os.Getenv("CHAOS_DEEP") != "" {
		n = 40
	} else if testing.Short() {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// TestChaos is the acceptance gate for fault containment: across every
// isolating controller and a spread of seeds, injected panics, delays,
// and deadlines must leave zero wedged controllers, zero leaked version
// slots, and zero isolation violations among the surviving computations.
// A failing seed is re-runnable alone via CHAOS_SEED=<n>.
func TestChaos(t *testing.T) {
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds(t) {
				rep, err := chaos.Run(chaos.Config{
					New:      v.new,
					Kind:     v.kind,
					Seed:     seed,
					Snapshot: v.snapshot,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				t.Log(rep)
				if err := rep.Err(); err != nil {
					t.Error(err)
				}
				cctest.AssertInvariants(t, rep.Recorder)
			}
		})
	}
}

// TestChaosInjects is a meta-test on the harness itself: with the default
// probabilities a run must actually inject faults of every class,
// otherwise TestChaos would vacuously pass.
func TestChaosInjects(t *testing.T) {
	var hookPanics, handlerPanics, cancels, timedOut, panicked int
	for seed := int64(0); seed < 4; seed++ {
		rep, err := chaos.Run(chaos.Config{
			New:  func() core.Controller { return cc.NewVCABasic() },
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		hookPanics += rep.HookPanics
		handlerPanics += rep.HandlerPanics
		cancels += rep.Cancels
		timedOut += rep.TimedOut
		panicked += rep.Panicked
	}
	if hookPanics == 0 {
		t.Error("no hook panics injected across 4 runs")
	}
	if handlerPanics == 0 {
		t.Error("no handler panics injected across 4 runs")
	}
	if cancels == 0 {
		t.Error("no deadlines injected across 4 runs")
	}
	if panicked == 0 {
		t.Error("no computation surfaced a PanicError across 4 runs")
	}
	_ = timedOut // deadline hits are load-dependent; injection is what we assert
}
