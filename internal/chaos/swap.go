// Swap storm: the live-reconfiguration half of the chaos harness. Where
// chaos.Run attacks a fixed stack with panics, delays, and deadlines,
// SwapRun additionally hot-swaps microprotocols mid-storm — rotating
// Epoch.Replace reconfigurations race the workload, the fault hook, and
// each other — and then holds the stack to the epoch ledger:
//
//   - Every swap eventually commits: the final epoch is 1 + swaps, even
//     when the hook faults reconfigurations pre-commit (they retry).
//   - Per-epoch drain balance: every superseded epoch retires with
//     Begun == Ended and Active == 0, and zero errors reach EpochErrs.
//   - No dispatch into a dead epoch: DeadEpochDispatches stays zero.
//   - Zero acked-write loss across versions: each slot carries a pair of
//     counters — an atomic ground truth and a racy value whose safety
//     must come from the controller. A replacement that forked its
//     predecessor's version slot would let old- and new-epoch
//     computations interleave on the racy value and lose an update; the
//     pair must match exactly at the end.
//   - Plus everything chaos.Run demands: serializability and lifecycle
//     balance of the trace, a completing post-storm probe, a clean
//     close, and ErrClosed afterwards.
//
// Computations caught compiling a footprint against a just-replaced
// microprotocol see *core.ReconfiguredError; the harness retries them
// against the current identity table, mirroring how a protocol stack
// re-resolves its specs after an upgrade (gc.Site.spawnRetry).
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// SwapConfig parameterizes one swap storm. The zero value of every field
// but New gets a sensible default.
type SwapConfig struct {
	// New creates a fresh controller; it must implement core.Reconfigurer
	// or be swap-safe by construction (cc.Serial).
	New func() core.Controller
	// Kind is the Spec flavour to build for it.
	Kind Kind
	// Seed drives every random decision of the run.
	Seed int64
	// Computations is the number of concurrent computations (default 60).
	Computations int
	// MPs is the number of counter microprotocols (default 4).
	MPs int
	// Swaps is the number of rotating Replace reconfigurations raced
	// against the workload (default 2*MPs).
	Swaps int
	// Fault probabilities and deadlines, as in Config.
	PanicProb        float64
	DelayProb        float64
	HandlerPanicProb float64
	CancelProb       float64
	Timeout          time.Duration
	// ProbeTimeout bounds the post-storm probe (default 10s).
	ProbeTimeout time.Duration
}

// SwapReport is the outcome of one swap storm.
type SwapReport struct {
	Controller   string
	Seed         int64
	Computations int
	Swaps        int

	// Per-computation outcomes.
	Completed int // returned nil
	Panicked  int // returned a *core.PanicError
	TimedOut  int // returned a *core.DeadlineError
	Failed    int // returned anything else (a containment bug)
	FirstFail error
	Respawns  int // spawn retries after a ReconfiguredError

	// Injection counters.
	HookPanics    int
	HookDelays    int
	HandlerPanics int
	Cancels       int
	SwapFaults    int // reconfigurations faulted pre-commit and retried

	// Epoch-ledger invariants.
	FinalEpoch  uint64 // want 1 + Swaps
	EpochStats  []core.EpochStat
	LedgerErrs  []string // superseded epochs with unbalanced drains
	EpochErrs   []error  // retirement errors recorded by the stack
	DeadEpochs  uint64   // dispatches into a retired epoch
	LostUpdates []string // slots whose racy counter trails the ground truth
	SwapErr     error    // a reconfiguration failed outside the fault model

	// Trace invariants.
	Serializable bool
	Cycle        []uint64
	Stats        trace.Stats
	ProbeErr     error
	CloseErr     error
	RejectErr    error

	// Recorder holds the full trace for post-mortems.
	Recorder *trace.Recorder
}

// Err returns nil when the storm satisfied every invariant, and an error
// joining each violated one otherwise.
func (r *SwapReport) Err() error {
	var errs []error
	tag := fmt.Sprintf("swapstorm[%s seed=%d]", r.Controller, r.Seed)
	if want := uint64(1 + r.Swaps); r.FinalEpoch != want {
		errs = append(errs, fmt.Errorf("%s: final epoch %d, want %d — a reconfiguration never committed",
			tag, r.FinalEpoch, want))
	}
	for _, msg := range r.LedgerErrs {
		errs = append(errs, fmt.Errorf("%s: epoch ledger: %s", tag, msg))
	}
	for _, err := range r.EpochErrs {
		errs = append(errs, fmt.Errorf("%s: epoch error: %w", tag, err))
	}
	if r.DeadEpochs > 0 {
		errs = append(errs, fmt.Errorf("%s: %d dispatches into a retired epoch", tag, r.DeadEpochs))
	}
	for _, msg := range r.LostUpdates {
		errs = append(errs, fmt.Errorf("%s: acked-write loss: %s", tag, msg))
	}
	if r.SwapErr != nil {
		errs = append(errs, fmt.Errorf("%s: swap failed outside the fault model: %w", tag, r.SwapErr))
	}
	if !r.Serializable {
		errs = append(errs, fmt.Errorf("%s: surviving computations violate the isolation property (cycle %v)",
			tag, r.Cycle))
	}
	if r.Stats.Spawned != r.Stats.Completed+r.Stats.Aborted {
		errs = append(errs, fmt.Errorf("%s: trace lifecycle imbalance: %d spawned, %d completed, %d aborted",
			tag, r.Stats.Spawned, r.Stats.Completed, r.Stats.Aborted))
	}
	if r.ProbeErr != nil {
		errs = append(errs, fmt.Errorf("%s: controller wedged or version slot leaked — probe failed: %w",
			tag, r.ProbeErr))
	}
	if r.CloseErr != nil {
		errs = append(errs, fmt.Errorf("%s: close: %w", tag, r.CloseErr))
	}
	if !errors.Is(r.RejectErr, core.ErrClosed) {
		errs = append(errs, fmt.Errorf("%s: post-close computation returned %v, want ErrClosed", tag, r.RejectErr))
	}
	if r.Failed > 0 {
		errs = append(errs, fmt.Errorf("%s: %d computations failed outside the fault model, first: %w",
			tag, r.Failed, r.FirstFail))
	}
	return errors.Join(errs...)
}

// String summarizes the storm for logs.
func (r *SwapReport) String() string {
	return fmt.Sprintf("swapstorm[%s seed=%d]: %d computations over %d swaps (epoch %d) — %d completed, %d panicked, %d timed out, %d failed, %d respawns; injected %d hook panics, %d delays, %d handler panics, %d deadlines, %d swap faults; serializable=%v probe=%v close=%v",
		r.Controller, r.Seed, r.Computations, r.Swaps, r.FinalEpoch,
		r.Completed, r.Panicked, r.TimedOut, r.Failed, r.Respawns,
		r.HookPanics, r.HookDelays, r.HandlerPanics, r.Cancels, r.SwapFaults,
		r.Serializable, r.ProbeErr == nil, r.CloseErr == nil)
}

// swapFixture is the swap-storm stack: m counter slots whose occupying
// microprotocol changes under the workload's feet. The slot arrays
// (events, counters) are fixed; the identity tables (mps, handlers) are
// rewritten by swaps under mu.
type swapFixture struct {
	stack  *core.Stack
	ctrl   core.Controller
	rec    *trace.Recorder
	hook   *faultHook
	events []*core.EventType
	execs  []atomic.Int64 // ground truth: one Add per handler execution
	racy   []int          // same increments, isolation-dependent

	mu       sync.RWMutex
	mps      []*core.Microprotocol
	handlers []*core.Handler
	vers     []int

	handlerPanics atomic.Int64
}

// visit builds the slot's handler body. Every version of a slot runs the
// same body over the same counters: the atomic records ground truth, the
// racy read–yield–write must be protected by the controller — across
// epochs, which is exactly what Replaced-slot continuity guarantees.
func (f *swapFixture) visit(i int) core.HandlerFunc {
	return func(ctx *core.Context, msg core.Message) error {
		s := msg.(*script)
		f.execs[i].Add(1)
		v := f.racy[i]
		runtime.Gosched() // widen the lost-update window
		f.racy[i] = v + 1
		if s.panicAt == s.pos {
			f.handlerPanics.Add(1)
			panic(fmt.Sprintf("chaos: planned handler panic at step %d", s.pos))
		}
		if s.pos+1 < len(s.seq) {
			return ctx.Trigger(f.events[s.seq[s.pos+1]],
				&script{seq: s.seq, pos: s.pos + 1, panicAt: s.panicAt})
		}
		return nil
	}
}

func newSwapFixture(cfg SwapConfig, hook *faultHook) *swapFixture {
	f := &swapFixture{
		rec:   trace.NewRecorder(),
		hook:  hook,
		execs: make([]atomic.Int64, cfg.MPs),
		racy:  make([]int, cfg.MPs),
		vers:  make([]int, cfg.MPs),
	}
	f.ctrl = cfg.New()
	f.stack = core.NewStack(f.ctrl, core.WithName("swapstorm"), core.WithTracer(f.rec), core.WithHook(hook))
	for i := 0; i < cfg.MPs; i++ {
		mp := core.NewMicroprotocol(fmt.Sprintf("swap%d", i))
		h := mp.AddHandler("visit", f.visit(i))
		f.mps = append(f.mps, mp)
		f.handlers = append(f.handlers, h)
		f.events = append(f.events, core.NewEventType(fmt.Sprintf("swapev%d", i)))
	}
	f.stack.Register(f.mps...)
	for i := range f.events {
		f.stack.Bind(f.events[i], f.handlers[i])
	}
	return f
}

// spec builds the Spec flavour for one script against the current
// identity table. Callers racing a swap may still compile against a
// just-retired identity; the spawn then fails with ReconfiguredError and
// run rebuilds the spec.
func (f *swapFixture) spec(kind Kind, seq []int) *core.Spec {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch kind {
	case KindBound:
		bounds := map[*core.Microprotocol]int{}
		for _, i := range seq {
			bounds[f.mps[i]]++
		}
		return core.AccessBound(bounds)
	case KindRoute:
		g := core.NewRouteGraph().Root(f.handlers[seq[0]])
		for i := 0; i+1 < len(seq); i++ {
			g.Edge(f.handlers[seq[i]], f.handlers[seq[i+1]])
		}
		return core.Route(g)
	default:
		var mps []*core.Microprotocol
		for _, i := range seq {
			mps = append(mps, f.mps[i])
		}
		return core.Access(mps...)
	}
}

// run spawns one script, rebuilding its spec and retrying whenever a swap
// retires the identity it compiled against. Retries are bounded: a
// ReconfiguredError that persists past them is a containment bug and
// surfaces in the report.
func (f *swapFixture) run(kind Kind, seq []int, panicAt int, timeout time.Duration, respawns *atomic.Int64) error {
	for tries := 0; ; tries++ {
		spec := f.spec(kind, seq)
		if timeout > 0 {
			spec = spec.WithTimeout(timeout)
		}
		err := f.stack.External(spec, f.events[seq[0]], &script{seq: seq, panicAt: panicAt})
		var re *core.ReconfiguredError
		if !errors.As(err, &re) || tries >= 32 {
			return err
		}
		respawns.Add(1)
		runtime.Gosched()
	}
}

// swap replaces one slot's microprotocol with a fresh same-behaviour
// version. The fault hook can panic inside Reconfigure before it commits
// (YieldReconfigure); that surfaces as a PanicError and the swap retries.
func (f *swapFixture) swap(slot int, faults *int) error {
	f.mu.RLock()
	oldName := f.mps[slot].Name()
	ver := f.vers[slot] + 1
	f.mu.RUnlock()
	next := core.NewMicroprotocol(fmt.Sprintf("swap%dv%d", slot, ver))
	h := next.AddHandler("visit", f.visit(slot))
	for tries := 0; ; tries++ {
		err := f.stack.Reconfigure(func(e *core.Epoch) { e.Replace(oldName, next) })
		if err == nil {
			break
		}
		var pe *core.PanicError
		if !errors.As(err, &pe) || tries >= 100 {
			return err
		}
		*faults++
	}
	f.mu.Lock()
	f.mps[slot] = next
	f.handlers[slot] = h
	f.vers[slot] = ver
	f.mu.Unlock()
	return nil
}

// SwapRun executes one swap storm and reports what survived.
func SwapRun(cfg SwapConfig) (*SwapReport, error) {
	if cfg.New == nil {
		return nil, errors.New("chaos: SwapConfig.New required")
	}
	if cfg.Computations <= 0 {
		cfg.Computations = 60
	}
	if cfg.MPs <= 0 {
		cfg.MPs = 4
	}
	if cfg.Swaps <= 0 {
		cfg.Swaps = 2 * cfg.MPs
	}
	if cfg.PanicProb == 0 {
		cfg.PanicProb = 0.05
	}
	if cfg.DelayProb == 0 {
		cfg.DelayProb = 0.10
	}
	if cfg.HandlerPanicProb == 0 {
		cfg.HandlerPanicProb = 0.20
	}
	if cfg.CancelProb == 0 {
		cfg.CancelProb = 0.20
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 10 * time.Second
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	hook := &faultHook{
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		panicProb: cfg.PanicProb,
		delayProb: cfg.DelayProb,
	}
	hook.armed.Store(true)
	f := newSwapFixture(cfg, hook)
	rep := &SwapReport{
		Controller:   f.ctrl.Name(),
		Seed:         cfg.Seed,
		Computations: cfg.Computations,
		Swaps:        cfg.Swaps,
		Recorder:     f.rec,
	}

	// Plan the workload single-threaded (reproducibility), then unleash it.
	type plan struct {
		seq     []int
		panicAt int
		timeout time.Duration
	}
	plans := make([]plan, cfg.Computations)
	for i := range plans {
		l := 1 + rng.Intn(4)
		seq := make([]int, l)
		for j := range seq {
			seq[j] = rng.Intn(cfg.MPs)
		}
		p := plan{seq: seq, panicAt: -1}
		if rng.Float64() < cfg.HandlerPanicProb {
			p.panicAt = rng.Intn(l)
		}
		if rng.Float64() < cfg.CancelProb {
			p.timeout = cfg.Timeout
			rep.Cancels++
		}
		plans[i] = p
	}
	pauses := make([]time.Duration, cfg.Swaps)
	for i := range pauses {
		pauses[i] = time.Duration(100+rng.Intn(600)) * time.Microsecond
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		respawns atomic.Int64
	)
	for _, p := range plans {
		wg.Add(1)
		go func(p plan) {
			defer wg.Done()
			err := f.run(cfg.Kind, p.seq, p.panicAt, p.timeout, &respawns)
			mu.Lock()
			defer mu.Unlock()
			var pe *core.PanicError
			var de *core.DeadlineError
			switch {
			case err == nil:
				rep.Completed++
			case errors.As(err, &pe):
				rep.Panicked++
			case errors.As(err, &de):
				rep.TimedOut++
			default:
				rep.Failed++
				if rep.FirstFail == nil {
					rep.FirstFail = err
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < cfg.Swaps; k++ {
			time.Sleep(pauses[k])
			if err := f.swap(k%cfg.MPs, &rep.SwapFaults); err != nil {
				mu.Lock()
				rep.SwapErr = err
				mu.Unlock()
				return
			}
		}
	}()
	wg.Wait()

	hook.armed.Store(false)
	rep.HookPanics = hook.panics
	rep.HookDelays = hook.delays
	rep.HandlerPanics = int(f.handlerPanics.Load())
	rep.Respawns = int(respawns.Load())

	// Probe: a full-footprint computation over the final identity table.
	probeSeq := make([]int, cfg.MPs)
	for i := range probeSeq {
		probeSeq[i] = i
	}
	rep.ProbeErr = f.run(cfg.Kind, probeSeq, -1, cfg.ProbeTimeout, &respawns)

	// Graceful drain with lifecycle verification, then prove the stack
	// rejects new work. Close supersedes the final epoch, so afterwards
	// every epoch in the ledger must have retired with balanced drains.
	rep.CloseErr = f.stack.Close()
	rep.RejectErr = f.stack.External(f.spec(cfg.Kind, []int{0}), f.events[0], &script{seq: []int{0}, panicAt: -1})

	rep.FinalEpoch = f.stack.CurrentEpoch()
	rep.EpochStats = f.stack.EpochStats()
	for _, st := range rep.EpochStats {
		if st.Begun != st.Ended || st.Active != 0 {
			rep.LedgerErrs = append(rep.LedgerErrs,
				fmt.Sprintf("epoch %d: begun %d, ended %d, active %d", st.Epoch, st.Begun, st.Ended, st.Active))
		}
		if st.Superseded && !st.Retired {
			rep.LedgerErrs = append(rep.LedgerErrs,
				fmt.Sprintf("epoch %d: superseded but never retired", st.Epoch))
		}
	}
	rep.EpochErrs = f.stack.EpochErrs()
	rep.DeadEpochs = f.stack.DeadEpochDispatches()
	for i := range f.racy {
		if truth := f.execs[i].Load(); int64(f.racy[i]) != truth {
			rep.LostUpdates = append(rep.LostUpdates,
				fmt.Sprintf("slot %d: counter %d, ground truth %d", i, f.racy[i], truth))
		}
	}

	check := f.rec.Check()
	rep.Serializable = check.Serializable
	rep.Cycle = check.Cycle
	rep.Stats = f.rec.Stats()
	return rep, nil
}
