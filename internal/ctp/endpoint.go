package ctp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/transport"
)

// SpecKind selects the isolated variant the Endpoint's computations
// declare (must match the controller, as with gc.Site).
type SpecKind int

// Spec kinds.
const (
	SpecBasic SpecKind = iota
	SpecBound
	SpecRoute
)

// Config describes one transport endpoint.
type Config struct {
	// Net, ID, Peer place the endpoint and name its single peer.
	Net      transport.Transport
	ID, Peer transport.NodeID
	// MSS is the maximum fragment payload (default 512 bytes).
	MSS int
	// Composition flags. Ordered requires Reliable (an unreliable
	// ordered stream would stall forever at the first loss).
	Reliable, Ordered, Checksummed bool
	// Window is ARQ's send window (default 32; negative = unlimited).
	Window int
	// RTO is ARQ's base retransmission timeout (default 50ms); per-frame
	// intervals back off exponentially (with jitter) from it.
	RTO time.Duration
	// MaxRetries caps retransmissions per frame; a frame that exhausts it
	// is abandoned and surfaces a *ConnFailedError (via Errs and Failed).
	// Zero means retry forever.
	MaxRetries int
	// Controller schedules computations (default cc.NewVCABasic()).
	Controller core.Controller
	// SpecKind must match the controller.
	SpecKind SpecKind
	// Bound is the per-microprotocol visit bound for SpecBound
	// (default 1024).
	Bound int
	// Deliver receives reassembled application messages. It runs inside
	// computations: be quick, don't call Endpoint methods synchronously.
	Deliver func(msg []byte)
	// Tracer, if set, observes the endpoint's stack.
	Tracer core.Tracer
	// PumpWorkers caps concurrently processed datagrams (default 16).
	PumpWorkers int
}

// Endpoint is one side of a point-to-point transport connection: a SAMOA
// stack of the configured layers wired to a simnet node.
type Endpoint struct {
	cfg   Config
	stack *core.Stack
	node  transport.Endpoint

	seg  *Segment
	ord  *Order
	arq  *ARQ
	sum  *Checksum
	wout *WireOut
	app  *core.Microprotocol

	evAppSend *core.EventType
	evRecvTop *core.EventType // first receive layer's event
	evTick    *core.EventType
	evDeliver *core.EventType

	specSend, specRecv, specTick *core.Spec

	quit     chan struct{}
	stopOnce sync.Once
	sem      chan struct{}
	wg       sync.WaitGroup

	errMu sync.Mutex
	errs  []error
}

// NewEndpoint builds (but does not start) an endpoint.
func NewEndpoint(cfg Config) (*Endpoint, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("ctp: Config.Net required")
	}
	if cfg.Ordered && !cfg.Reliable {
		return nil, fmt.Errorf("ctp: Ordered requires Reliable (a loss would stall the stream forever)")
	}
	if cfg.MSS <= 0 {
		cfg.MSS = 512
	}
	if cfg.Window == 0 {
		cfg.Window = 32
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	if cfg.Controller == nil {
		cfg.Controller = cc.NewVCABasic()
	}
	if cfg.Bound <= 0 {
		cfg.Bound = 1024
	}
	if cfg.PumpWorkers <= 0 {
		cfg.PumpWorkers = 16
	}

	e := &Endpoint{
		cfg:  cfg,
		node: cfg.Net.Endpoint(cfg.ID),
		quit: make(chan struct{}),
		sem:  make(chan struct{}, cfg.PumpWorkers),
	}
	opts := []core.StackOption{core.WithName("ctp")}
	if cfg.Tracer != nil {
		opts = append(opts, core.WithTracer(cfg.Tracer))
	}
	e.stack = core.NewStack(cfg.Controller, opts...)

	// Events at each enabled layer boundary, bottom-up. The wire's send
	// event always exists; each enabled layer gets a send event and a
	// recv event.
	evWireSend := core.NewEventType("WireSend")
	e.evDeliver = core.NewEventType("Deliver")
	e.evAppSend = core.NewEventType("AppSend")
	e.evTick = core.NewEventType("RetransmitTick")

	// Build bottom-up so every layer knows its down event; remember each
	// layer's recv event so the layer above can name it as `up`.
	e.wout = newWireOut(e.node, cfg.Peer)
	downSend := evWireSend

	var recvChain []*core.EventType // bottom-to-top recv events
	if cfg.Checksummed {
		ev := core.NewEventType("SumRecv")
		e.sum = newChecksum(downSend, nil) // up set below
		downSend = core.NewEventType("SumSend")
		recvChain = append(recvChain, ev)
	}
	if cfg.Reliable {
		ev := core.NewEventType("ArqRecv")
		e.arq = newARQ(cfg.RTO, cfg.Window, cfg.MaxRetries, int64(cfg.ID)+1, downSend, nil)
		downSend = core.NewEventType("ArqSend")
		recvChain = append(recvChain, ev)
	}
	if cfg.Ordered {
		ev := core.NewEventType("OrdRecv")
		e.ord = newOrder(downSend, nil)
		downSend = core.NewEventType("OrdSend")
		recvChain = append(recvChain, ev)
	}
	segRecv := core.NewEventType("SegRecv")
	e.seg = newSegment(cfg.MSS, downSend, e.evDeliver)
	recvChain = append(recvChain, segRecv)

	// Fix up the `up` targets: each layer's recv hands to the next recv
	// event in the chain.
	idx := 0
	if cfg.Checksummed {
		e.sum.up = recvChain[idx+1]
		idx++
	}
	if cfg.Reliable {
		e.arq.up = recvChain[idx+1]
		idx++
	}
	if cfg.Ordered {
		e.ord.up = recvChain[idx+1]
		idx++
	}
	e.evRecvTop = recvChain[0]

	// Application delivery microprotocol.
	e.app = core.NewMicroprotocol("app")
	hDeliver := e.app.AddHandler("deliver", func(_ *core.Context, msg core.Message) error {
		if cfg.Deliver != nil {
			cfg.Deliver(msg.([]byte))
		}
		return nil
	})

	// Register and bind. Send events chain top-down; note each layer
	// holds its own down event — bind those to the layer below.
	e.stack.Register(e.wout.mp, e.seg.mp, e.app)
	if e.ord != nil {
		e.stack.Register(e.ord.mp)
	}
	if e.arq != nil {
		e.stack.Register(e.arq.mp)
	}
	if e.sum != nil {
		e.stack.Register(e.sum.mp)
	}

	e.stack.Bind(e.evAppSend, e.seg.hSend)
	bindSend := func(ev *core.EventType, h *core.Handler) { e.stack.Bind(ev, h) }
	// seg.down → (ord|arq|sum|wire).send etc., matching construction.
	if e.ord != nil {
		bindSend(e.seg.down, e.ord.hSend)
		if e.arq != nil {
			bindSend(e.ord.down, e.arq.hSend)
		} else if e.sum != nil {
			bindSend(e.ord.down, e.sum.hSend)
		} else {
			bindSend(e.ord.down, e.wout.hSend)
		}
	} else if e.arq != nil {
		bindSend(e.seg.down, e.arq.hSend)
	} else if e.sum != nil {
		bindSend(e.seg.down, e.sum.hSend)
	} else {
		bindSend(e.seg.down, e.wout.hSend)
	}
	if e.arq != nil {
		if e.sum != nil {
			bindSend(e.arq.down, e.sum.hSend)
		} else {
			bindSend(e.arq.down, e.wout.hSend)
		}
		e.stack.Bind(e.evTick, e.arq.hRetransmit)
	}
	if e.sum != nil {
		bindSend(e.sum.down, e.wout.hSend)
	}

	// Receive chain bindings.
	idx = 0
	if e.sum != nil {
		e.stack.Bind(recvChain[idx], e.sum.hRecv)
		idx++
	}
	if e.arq != nil {
		e.stack.Bind(recvChain[idx], e.arq.hRecv)
		idx++
	}
	if e.ord != nil {
		e.stack.Bind(recvChain[idx], e.ord.hRecv)
		idx++
	}
	e.stack.Bind(recvChain[idx], e.seg.hRecv)
	e.stack.Bind(e.evDeliver, hDeliver)

	e.buildSpecs()
	return e, nil
}

// callGraph lists caller→callee pairs for the enabled composition.
func (e *Endpoint) callGraph() [][2]*core.Handler {
	var edges [][2]*core.Handler
	nextSend := func() *core.Handler { // handler seg.send calls
		switch {
		case e.ord != nil:
			return e.ord.hSend
		case e.arq != nil:
			return e.arq.hSend
		case e.sum != nil:
			return e.sum.hSend
		default:
			return e.wout.hSend
		}
	}
	edges = append(edges, [2]*core.Handler{e.seg.hSend, nextSend()})
	if e.ord != nil {
		var down *core.Handler
		switch {
		case e.arq != nil:
			down = e.arq.hSend
		case e.sum != nil:
			down = e.sum.hSend
		default:
			down = e.wout.hSend
		}
		edges = append(edges, [2]*core.Handler{e.ord.hSend, down})
	}
	if e.arq != nil {
		var down *core.Handler
		if e.sum != nil {
			down = e.sum.hSend
		} else {
			down = e.wout.hSend
		}
		edges = append(edges,
			[2]*core.Handler{e.arq.hSend, down},
			[2]*core.Handler{e.arq.hRetransmit, down},
			[2]*core.Handler{e.arq.hRecv, down}) // acks
	}
	if e.sum != nil {
		edges = append(edges, [2]*core.Handler{e.sum.hSend, e.wout.hSend})
	}
	// Receive chain upward edges.
	if e.sum != nil {
		switch {
		case e.arq != nil:
			edges = append(edges, [2]*core.Handler{e.sum.hRecv, e.arq.hRecv})
		case e.ord != nil:
			edges = append(edges, [2]*core.Handler{e.sum.hRecv, e.ord.hRecv})
		default:
			edges = append(edges, [2]*core.Handler{e.sum.hRecv, e.seg.hRecv})
		}
	}
	if e.arq != nil {
		if e.ord != nil {
			edges = append(edges, [2]*core.Handler{e.arq.hRecv, e.ord.hRecv})
		} else {
			edges = append(edges, [2]*core.Handler{e.arq.hRecv, e.seg.hRecv})
		}
	}
	if e.ord != nil {
		edges = append(edges, [2]*core.Handler{e.ord.hRecv, e.seg.hRecv})
	}
	edges = append(edges, [2]*core.Handler{e.seg.hRecv, e.app.Handler("deliver")})
	return edges
}

// buildSpecs derives the per-entry specs from the call graph, as gc.Site
// does.
func (e *Endpoint) buildSpecs() {
	b := core.NewSpecBuilder()
	for _, ed := range e.callGraph() {
		b.Edge(ed[0], ed[1])
	}
	build := func(roots ...*core.Handler) *core.Spec {
		switch e.cfg.SpecKind {
		case SpecRoute:
			return b.Route(roots...)
		case SpecBound:
			return b.Bound(e.cfg.Bound, roots...)
		default:
			return b.Basic(roots...)
		}
	}
	e.specSend = build(e.seg.hSend)
	recvRoot := e.seg.hRecv
	switch {
	case e.sum != nil:
		recvRoot = e.sum.hRecv
	case e.arq != nil:
		recvRoot = e.arq.hRecv
	case e.ord != nil:
		recvRoot = e.ord.hRecv
	}
	e.specRecv = build(recvRoot)
	if e.arq != nil {
		e.specTick = build(e.arq.hRetransmit)
	}
}

// Start launches the receive pump and, for reliable compositions, the
// retransmission ticker.
func (e *Endpoint) Start() {
	e.wg.Add(1)
	go e.pump()
	if e.arq != nil {
		e.wg.Add(1)
		go e.ticker()
	}
}

// Stop crashes the node (unblocking the pump), waits for in-flight
// computations, then closes the stack — draining it and verifying its
// lifecycle balance (any violation lands in Errs). Stop is idempotent.
func (e *Endpoint) Stop() {
	e.stopOnce.Do(func() {
		close(e.quit)
		e.cfg.Net.Crash(e.cfg.ID)
	})
	e.wg.Wait()
	e.record(e.stack.Close())
}

// Send transmits an application message to the peer as one isolated
// computation.
func (e *Endpoint) Send(msg []byte) error {
	return e.stack.External(e.specSend, e.evAppSend, append([]byte(nil), msg...))
}

func (e *Endpoint) pump() {
	defer e.wg.Done()
	for {
		d, ok := e.node.Recv()
		if !ok {
			return
		}
		if d.From != e.cfg.Peer {
			continue
		}
		select {
		case e.sem <- struct{}{}:
		case <-e.quit:
			return
		}
		e.wg.Add(1)
		go func(payload []byte) {
			defer e.wg.Done()
			defer func() { <-e.sem }()
			e.record(e.stack.External(e.specRecv, e.evRecvTop, payload))
		}(d.Payload)
	}
}

func (e *Endpoint) ticker() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.RTO / 2)
	defer t.Stop()
	busy := make(chan struct{}, 1)
	for {
		select {
		case <-e.quit:
			return
		case <-t.C:
		}
		select {
		case busy <- struct{}{}:
		default:
			continue
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() { <-busy }()
			e.record(e.stack.External(e.specTick, e.evTick, nil))
		}()
	}
}

func (e *Endpoint) record(err error) {
	if err == nil {
		return
	}
	e.errMu.Lock()
	e.errs = append(e.errs, err)
	e.errMu.Unlock()
}

// Errs returns computation errors recorded so far.
func (e *Endpoint) Errs() []error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return append([]error(nil), e.errs...)
}

// Failed returns the connection failures recorded so far: frames that
// exhausted Config.MaxRetries without an ack (nil for unreliable or
// uncapped compositions).
func (e *Endpoint) Failed() []*ConnFailedError {
	if e.arq == nil {
		return nil
	}
	return e.arq.Failures()
}

// Retransmits reports ARQ retransmissions (0 for unreliable
// compositions).
func (e *Endpoint) Retransmits() uint64 {
	if e.arq == nil {
		return 0
	}
	return e.arq.Retransmits()
}

// BadFrames reports checksum-rejected datagrams (0 when the layer is
// disabled).
func (e *Endpoint) BadFrames() uint64 {
	if e.sum == nil {
		return 0
	}
	return e.sum.BadFrames()
}
