package ctp_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ctp"
	"repro/internal/simnet"
)

// pair builds two connected endpoints over one simnet with mirrored
// configs, recording B's deliveries.
type pair struct {
	t     *testing.T
	net   *simnet.Network
	a, b  *ctp.Endpoint
	mu    sync.Mutex
	deliv [][]byte
}

func newPair(t *testing.T, netCfg simnet.Config, mutate func(*ctp.Config)) *pair {
	t.Helper()
	netCfg.Nodes = 2
	p := &pair{t: t, net: simnet.New(netCfg)}
	mk := func(id, peer simnet.NodeID, deliver func([]byte)) *ctp.Endpoint {
		cfg := ctp.Config{
			Net: p.net, ID: id, Peer: peer,
			Reliable: true, Ordered: true, Checksummed: true,
			RTO: 10 * time.Millisecond, MSS: 64,
			Deliver: deliver,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		e, err := ctp.NewEndpoint(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		return e
	}
	p.a = mk(0, 1, nil)
	p.b = mk(1, 0, func(msg []byte) {
		p.mu.Lock()
		p.deliv = append(p.deliv, append([]byte(nil), msg...))
		p.mu.Unlock()
	})
	t.Cleanup(func() {
		p.a.Stop()
		p.b.Stop()
		p.net.Close()
		for _, err := range p.a.Errs() {
			t.Errorf("endpoint A: %v", err)
		}
		for _, err := range p.b.Errs() {
			t.Errorf("endpoint B: %v", err)
		}
	})
	return p
}

func (p *pair) delivered() [][]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([][]byte, len(p.deliv))
	copy(out, p.deliv)
	return out
}

func (p *pair) waitDelivered(n int) {
	p.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(p.delivered()) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	p.t.Fatalf("timeout: delivered %d of %d", len(p.delivered()), n)
}

func TestCleanLinkSmallMessages(t *testing.T) {
	p := newPair(t, simnet.Config{Seed: 1}, nil)
	for i := 0; i < 5; i++ {
		if err := p.a.Send([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	p.waitDelivered(5)
	for i, m := range p.delivered() {
		if string(m) != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("delivered[%d] = %q", i, m)
		}
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	p := newPair(t, simnet.Config{Seed: 2}, nil)
	big := make([]byte, 10_000) // 157 fragments at MSS 64
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := p.a.Send(big); err != nil {
		t.Fatal(err)
	}
	p.waitDelivered(1)
	if got := p.delivered()[0]; !bytes.Equal(got, big) {
		t.Fatalf("reassembly corrupted the message (len %d vs %d)", len(got), len(big))
	}
}

func TestEmptyMessage(t *testing.T) {
	p := newPair(t, simnet.Config{Seed: 3}, nil)
	if err := p.a.Send(nil); err != nil {
		t.Fatal(err)
	}
	p.waitDelivered(1)
	if len(p.delivered()[0]) != 0 {
		t.Fatalf("empty message grew: %v", p.delivered()[0])
	}
}

func TestLossyLinkReliableOrdered(t *testing.T) {
	p := newPair(t, simnet.Config{
		Seed: 4, LossProb: 0.25,
		MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
	}, nil)
	const n = 20
	for i := 0; i < n; i++ {
		if err := p.a.Send([]byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	p.waitDelivered(n)
	for i, m := range p.delivered()[:n] {
		if string(m) != fmt.Sprintf("m%02d", i) {
			t.Fatalf("order broken at %d: %q", i, m)
		}
	}
	if p.a.Retransmits() == 0 {
		t.Fatal("no retransmissions on a lossy (25 percent) link is implausible")
	}
}

func TestCorruptedLinkChecksumRepairs(t *testing.T) {
	p := newPair(t, simnet.Config{
		Seed: 5, CorruptProb: 0.25,
		MinDelay: 50 * time.Microsecond, MaxDelay: 300 * time.Microsecond,
	}, nil)
	const n = 15
	want := make([][]byte, n)
	for i := range want {
		want[i] = []byte(fmt.Sprintf("payload-%02d-%d", i, i*i))
		if err := p.a.Send(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	p.waitDelivered(n)
	for i, m := range p.delivered()[:n] {
		if !bytes.Equal(m, want[i]) {
			t.Fatalf("corrupted payload delivered at %d: %q", i, m)
		}
	}
	if p.b.BadFrames() == 0 && p.a.BadFrames() == 0 {
		t.Fatal("no checksum rejections on a corrupting (25 percent) link is implausible")
	}
}

func TestUnreliableCompositionDropsAreSilent(t *testing.T) {
	p := newPair(t, simnet.Config{Seed: 6, LossProb: 0.5}, func(cfg *ctp.Config) {
		cfg.Reliable = false
		cfg.Ordered = false
		cfg.Checksummed = false
	})
	const n = 200
	for i := 0; i < n; i++ {
		if err := p.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	got := len(p.delivered())
	if got == 0 || got == n {
		t.Fatalf("unreliable datagram service delivered %d of %d — expected partial loss", got, n)
	}
	if p.a.Retransmits() != 0 {
		t.Fatal("unreliable composition must not retransmit")
	}
}

// TestDeadPeerSurfacesConnFailure: with a retry cap, frames sent to a
// peer that never acks are eventually abandoned with a typed connection
// failure instead of retransmitting forever.
func TestDeadPeerSurfacesConnFailure(t *testing.T) {
	net := simnet.New(simnet.Config{Nodes: 2, Seed: 10})
	defer net.Close()
	e, err := ctp.NewEndpoint(ctp.Config{
		Net: net, ID: 0, Peer: 1,
		Reliable: true,
		RTO:      2 * time.Millisecond, MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	if err := e.Send([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(e.Failed()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no connection failure surfaced; retransmits = %d", e.Retransmits())
		}
		time.Sleep(time.Millisecond)
	}
	f := e.Failed()[0]
	if f.Retries != 3 {
		t.Fatalf("failure = %+v, want 3 retries", f)
	}
	// The failure also surfaces through the computation error log.
	found := false
	for _, err := range e.Errs() {
		var cf *ctp.ConnFailedError
		if errors.As(err, &cf) {
			found = true
		}
	}
	if !found {
		t.Fatal("ConnFailedError not recorded in Errs")
	}
	// Bounded retries: the abandoned frame stops consuming the wire.
	quiesced := e.Retransmits()
	time.Sleep(50 * time.Millisecond)
	if e.Retransmits() != quiesced {
		t.Fatal("retransmissions continued after the frame was abandoned")
	}
}

func TestOrderedRequiresReliable(t *testing.T) {
	net := simnet.New(simnet.Config{Nodes: 2, Seed: 7})
	defer net.Close()
	_, err := ctp.NewEndpoint(ctp.Config{Net: net, ID: 0, Peer: 1, Ordered: true})
	if err == nil {
		t.Fatal("Ordered without Reliable must be rejected")
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	var mu sync.Mutex
	var aGot [][]byte
	net := simnet.New(simnet.Config{Nodes: 2, Seed: 8, LossProb: 0.1})
	defer net.Close()
	mk := func(id, peer simnet.NodeID, deliver func([]byte)) *ctp.Endpoint {
		e, err := ctp.NewEndpoint(ctp.Config{
			Net: net, ID: id, Peer: peer,
			Reliable: true, Ordered: true, Checksummed: true,
			RTO: 10 * time.Millisecond, Deliver: deliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		return e
	}
	var bGot [][]byte
	a := mk(0, 1, func(m []byte) { mu.Lock(); aGot = append(aGot, m); mu.Unlock() })
	b := mk(1, 0, func(m []byte) { mu.Lock(); bGot = append(bGot, m); mu.Unlock() })
	defer a.Stop()
	defer b.Stop()
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte(fmt.Sprintf("a→b %d", i))); err != nil {
			t.Fatal(err)
		}
		if err := b.Send([]byte(fmt.Sprintf("b→a %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		na, nb := len(aGot), len(bGot)
		mu.Unlock()
		if na >= 10 && nb >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: a=%d b=%d", na, nb)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAllControllerSpecCombos runs the reliable-ordered-checksummed stack
// under every isolated variant.
func TestAllControllerSpecCombos(t *testing.T) {
	combos := []struct {
		name string
		mk   func() core.Controller
		kind ctp.SpecKind
	}{
		{"vca-basic", func() core.Controller { return cc.NewVCABasic() }, ctp.SpecBasic},
		{"vca-bound", func() core.Controller { return cc.NewVCABound() }, ctp.SpecBound},
		{"vca-route", func() core.Controller { return cc.NewVCARoute() }, ctp.SpecRoute},
		{"serial", func() core.Controller { return cc.NewSerial() }, ctp.SpecBasic},
		{"tso", func() core.Controller { return cc.NewTSO() }, ctp.SpecBasic},
		{"vca-rw", func() core.Controller { return cc.NewVCARW() }, ctp.SpecBasic},
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			p := newPair(t, simnet.Config{Seed: 9, LossProb: 0.15}, func(cfg *ctp.Config) {
				cfg.Controller = combo.mk()
				cfg.SpecKind = combo.kind
			})
			for i := 0; i < 8; i++ {
				if err := p.a.Send([]byte(fmt.Sprintf("c%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			p.waitDelivered(8)
			for i, m := range p.delivered()[:8] {
				if string(m) != fmt.Sprintf("c%d", i) {
					t.Fatalf("order broken: %q at %d", m, i)
				}
			}
		})
	}
}

// TestStreamIntegrityProperty: any batch of random messages over a lossy,
// corrupting, reordering link arrives complete, uncorrupted and in order.
func TestStreamIntegrityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newPair(t, simnet.Config{
			Seed:     seed,
			LossProb: 0.15, CorruptProb: 0.1,
			MinDelay: 20 * time.Microsecond, MaxDelay: 2 * time.Millisecond,
		}, nil)
		n := 3 + rng.Intn(6)
		want := make([][]byte, n)
		for i := range want {
			want[i] = make([]byte, rng.Intn(300))
			rng.Read(want[i])
			if err := p.a.Send(want[i]); err != nil {
				t.Error(err)
			}
		}
		p.waitDelivered(n)
		for i, m := range p.delivered()[:n] {
			if !bytes.Equal(m, want[i]) {
				t.Errorf("seed %d: message %d corrupted or reordered", seed, i)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
