// Package ctp is a configurable transport protocol composed from SAMOA
// microprotocols — the second protocol system in this repository, built
// in the image of Cactus's CTP ("a configurable and extensible transport
// protocol", the paper's reference [24]), which is the tradition the
// paper positions itself in.
//
// A transport Endpoint stacks four optional layers over the simulated
// network, each an ordinary microprotocol whose handlers communicate only
// through events:
//
//	application
//	   │ Send                      ▲ Deliver
//	Segment    — splits messages into MSS-sized fragments, reassembles
//	Order      — per-connection sequence numbers, in-order release
//	ARQ        — positive acks, retransmission, sliding send window
//	Checksum   — FNV-32a over the frame, drops corrupted datagrams
//	   │                           ▲
//	 wire (simnet)
//
// The composition is chosen per Endpoint (Reliable, Ordered, Checksummed);
// disabled layers simply drop out of the event chain — the configurability
// the protocol-framework literature is about, here with the SAMOA twist
// that every external event (application send, datagram arrival,
// retransmission tick) runs as an isolated computation, so the layers'
// unlocked state is protected by the concurrency controller.
//
// The layer interplay under adversity is real: a corrupted datagram is
// dropped by Checksum, so ARQ never acknowledges it and the sender's
// retransmission repairs the stream; Order holds back out-of-order
// fragments until ARQ has filled the gaps; Segment reassembles only
// complete messages.
package ctp
