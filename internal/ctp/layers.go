package ctp

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dedupe"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ARQ frame kinds.
const (
	arqData uint8 = 1
	arqAck  uint8 = 2
)

// Segment splits application messages into MSS-sized fragments on the way
// down and reassembles them on the way up. Frame: {msgID, idx, cnt, frag}.
type Segment struct {
	mp   *core.Microprotocol
	mss  int
	down *core.EventType // next send layer
	up   *core.EventType // delivery to the application

	nextMsgID uint64
	partial   map[uint64]*partialMsg

	hSend, hRecv *core.Handler
}

type partialMsg struct {
	cnt   int
	got   int
	parts [][]byte
}

func newSegment(mss int, down, up *core.EventType) *Segment {
	s := &Segment{
		mp:      core.NewMicroprotocol("segment"),
		mss:     mss,
		down:    down,
		up:      up,
		partial: make(map[uint64]*partialMsg),
	}
	s.hSend = s.mp.AddHandler("send", s.send)
	s.hRecv = s.mp.AddHandler("recv", s.recv)
	return s
}

func (s *Segment) send(ctx *core.Context, msg core.Message) error {
	data := msg.([]byte)
	s.nextMsgID++
	id := s.nextMsgID
	cnt := (len(data) + s.mss - 1) / s.mss
	if cnt == 0 {
		cnt = 1
	}
	for i := 0; i < cnt; i++ {
		lo := i * s.mss
		hi := lo + s.mss
		if hi > len(data) {
			hi = len(data)
		}
		w := wire.NewWriter(16 + hi - lo)
		w.UVarint(id)
		w.U16(uint16(i))
		w.U16(uint16(cnt))
		w.BytesPrefixed(data[lo:hi])
		if err := ctx.Trigger(s.down, append([]byte(nil), w.Bytes()...)); err != nil {
			return err
		}
	}
	return nil
}

func (s *Segment) recv(ctx *core.Context, msg core.Message) error {
	r := wire.NewReader(msg.([]byte))
	id := r.UVarint()
	idx := int(r.U16())
	cnt := int(r.U16())
	frag := r.BytesPrefixed()
	if err := r.Err(); err != nil {
		return err
	}
	if cnt <= 0 || idx >= cnt {
		return nil // malformed: drop
	}
	p := s.partial[id]
	if p == nil {
		p = &partialMsg{cnt: cnt, parts: make([][]byte, cnt)}
		s.partial[id] = p
	}
	if p.cnt != cnt || p.parts[idx] != nil {
		if p.parts[idx] != nil {
			return nil // duplicate fragment
		}
		return nil // inconsistent: drop
	}
	p.parts[idx] = append([]byte(nil), frag...)
	p.got++
	if p.got < p.cnt {
		return nil
	}
	delete(s.partial, id)
	var out []byte
	for _, part := range p.parts {
		out = append(out, part...)
	}
	return ctx.Trigger(s.up, out)
}

// Order stamps frames with a per-connection sequence number and releases
// them upward in order. It assumes a reliable layer below it (the
// Endpoint enforces Ordered ⇒ Reliable); a gap therefore always fills
// eventually. Frame: {oseq, inner}.
type Order struct {
	mp   *core.Microprotocol
	down *core.EventType
	up   *core.EventType

	nextOut uint64
	nextIn  uint64
	buffer  map[uint64][]byte

	hSend, hRecv *core.Handler
}

func newOrder(down, up *core.EventType) *Order {
	o := &Order{
		mp:     core.NewMicroprotocol("order"),
		down:   down,
		up:     up,
		nextIn: 1,
		buffer: make(map[uint64][]byte),
	}
	o.hSend = o.mp.AddHandler("send", o.send)
	o.hRecv = o.mp.AddHandler("recv", o.recv)
	return o
}

func (o *Order) send(ctx *core.Context, msg core.Message) error {
	data := msg.([]byte)
	o.nextOut++
	w := wire.NewWriter(9 + len(data))
	w.U64(o.nextOut)
	w.BytesPrefixed(data)
	return ctx.Trigger(o.down, append([]byte(nil), w.Bytes()...))
}

func (o *Order) recv(ctx *core.Context, msg core.Message) error {
	r := wire.NewReader(msg.([]byte))
	oseq := r.U64()
	inner := r.BytesPrefixed()
	if err := r.Err(); err != nil {
		return err
	}
	if oseq < o.nextIn {
		return nil // duplicate of something already released
	}
	if _, dup := o.buffer[oseq]; dup {
		return nil
	}
	o.buffer[oseq] = append([]byte(nil), inner...)
	for {
		data, ok := o.buffer[o.nextIn]
		if !ok {
			return nil
		}
		delete(o.buffer, o.nextIn)
		o.nextIn++
		if err := ctx.Trigger(o.up, data); err != nil {
			return err
		}
	}
}

// ConnFailedError reports that a data frame exhausted its retransmission
// budget: the connection is considered failed for that frame (the peer is
// unreachable or the link is persistently lossy beyond repair).
type ConnFailedError struct {
	Seq     uint64 // ARQ sequence number of the abandoned frame
	Retries int    // retransmissions attempted before giving up
}

func (e *ConnFailedError) Error() string {
	return fmt.Sprintf("ctp: connection failed: frame %d unacknowledged after %d retransmissions", e.Seq, e.Retries)
}

// ARQ provides reliability: every data frame carries a sequence number
// and is buffered until acknowledged; a timer retransmits with per-frame
// exponential backoff and jitter; a sliding window bounds the
// unacknowledged frames (excess sends queue); receivers ack everything
// and deduplicate. With a retry cap, frames that exhaust it are abandoned
// and surface a ConnFailedError. Frames: {kind, aseq, inner?}.
type ARQ struct {
	mp         *core.Microprotocol
	rto        time.Duration
	window     int
	maxRetries int
	down       *core.EventType
	up         *core.EventType

	nextSeq uint64
	pending map[uint64]*arqPending
	queued  [][]byte
	seen    dedupe.Seq
	rng     *rand.Rand

	retransmits atomic.Uint64

	failMu   sync.Mutex
	failures []*ConnFailedError

	hSend, hRecv, hRetransmit *core.Handler
}

type arqPending struct {
	frame  []byte
	sentAt time.Time
	rto    time.Duration // current backoff interval for this frame
	tries  int           // retransmissions so far
}

// backoffCap bounds the exponential backoff at this multiple of the base
// RTO.
const backoffCap = 8

func newARQ(rto time.Duration, window, maxRetries int, seed int64, down, up *core.EventType) *ARQ {
	a := &ARQ{
		mp:         core.NewMicroprotocol("arq"),
		rto:        rto,
		window:     window,
		maxRetries: maxRetries,
		down:       down,
		up:         up,
		pending:    make(map[uint64]*arqPending),
		rng:        rand.New(rand.NewSource(seed)),
	}
	a.hSend = a.mp.AddHandler("send", a.send)
	a.hRecv = a.mp.AddHandler("recv", a.recv)
	a.hRetransmit = a.mp.AddHandler("retransmit", a.retransmit)
	return a
}

func (a *ARQ) send(ctx *core.Context, msg core.Message) error {
	data := msg.([]byte)
	if a.window > 0 && len(a.pending) >= a.window {
		a.queued = append(a.queued, data)
		return nil
	}
	return a.transmit(ctx, data)
}

func (a *ARQ) transmit(ctx *core.Context, data []byte) error {
	a.nextSeq++
	w := wire.NewWriter(16 + len(data))
	w.U8(arqData)
	w.U64(a.nextSeq)
	w.BytesPrefixed(data)
	frame := append([]byte(nil), w.Bytes()...)
	a.pending[a.nextSeq] = &arqPending{frame: frame, sentAt: time.Now(), rto: a.rto}
	return ctx.Trigger(a.down, frame)
}

func (a *ARQ) recv(ctx *core.Context, msg core.Message) error {
	r := wire.NewReader(msg.([]byte))
	switch kind := r.U8(); kind {
	case arqData:
		aseq := r.U64()
		inner := r.BytesPrefixed()
		if err := r.Err(); err != nil {
			return err
		}
		// Ack unconditionally; the ack rides the same downward path
		// (through Checksum, if enabled) as data.
		w := wire.NewWriter(9)
		w.U8(arqAck)
		w.U64(aseq)
		if err := ctx.Trigger(a.down, append([]byte(nil), w.Bytes()...)); err != nil {
			return err
		}
		if !a.seen.Mark(aseq) {
			return nil
		}
		return ctx.Trigger(a.up, append([]byte(nil), inner...))
	case arqAck:
		aseq := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		delete(a.pending, aseq)
		for len(a.queued) > 0 && (a.window <= 0 || len(a.pending) < a.window) {
			data := a.queued[0]
			a.queued = a.queued[1:]
			if err := a.transmit(ctx, data); err != nil {
				return err
			}
		}
		return nil
	default:
		return nil
	}
}

func (a *ARQ) retransmit(ctx *core.Context, _ core.Message) error {
	now := time.Now()
	var failed error
	for seq, p := range a.pending {
		if now.Sub(p.sentAt) < p.rto {
			continue
		}
		if a.maxRetries > 0 && p.tries >= a.maxRetries {
			// Budget exhausted: abandon the frame and surface the failure,
			// but keep scanning — other frames may still be repairable.
			delete(a.pending, seq)
			cf := &ConnFailedError{Seq: seq, Retries: p.tries}
			a.failMu.Lock() //samoa:ignore blocking — uncontended guard for the Failures() accessor, which application code reads from outside any computation
			a.failures = append(a.failures, cf)
			a.failMu.Unlock()
			if failed == nil {
				failed = cf
			}
			continue
		}
		p.tries++
		p.sentAt = now
		// Exponential backoff with ±25% jitter, capped at backoffCap×base:
		// doubling spaces retries out under persistent outages, the jitter
		// decorrelates the two directions of a connection.
		next := p.rto * 2
		if max := a.rto * backoffCap; next > max {
			next = max
		}
		p.rto = next + time.Duration((a.rng.Float64()-0.5)*0.5*float64(next))
		a.retransmits.Add(1)
		if err := ctx.Trigger(a.down, p.frame); err != nil {
			return err
		}
	}
	return failed
}

// Retransmits reports the total retransmissions so far.
func (a *ARQ) Retransmits() uint64 { return a.retransmits.Load() }

// Failures returns the connection failures recorded so far (frames
// abandoned after exhausting their retry budget).
func (a *ARQ) Failures() []*ConnFailedError {
	a.failMu.Lock()
	defer a.failMu.Unlock()
	return append([]*ConnFailedError(nil), a.failures...)
}

// Checksum guards the whole frame below it with FNV-32a; corrupted
// datagrams are silently dropped (ARQ repairs the loss, if present).
// Frame: {sum, inner}.
type Checksum struct {
	mp   *core.Microprotocol
	down *core.EventType
	up   *core.EventType

	bad atomic.Uint64

	hSend, hRecv *core.Handler
}

func newChecksum(down, up *core.EventType) *Checksum {
	c := &Checksum{
		mp:   core.NewMicroprotocol("checksum"),
		down: down,
		up:   up,
	}
	c.hSend = c.mp.AddHandler("send", c.send)
	c.hRecv = c.mp.AddHandler("recv", c.recv)
	return c
}

func sum32(data []byte) uint32 {
	h := fnv.New32a()
	h.Write(data)
	return h.Sum32()
}

func (c *Checksum) send(ctx *core.Context, msg core.Message) error {
	data := msg.([]byte)
	w := wire.NewWriter(5 + len(data))
	w.U32(sum32(data))
	w.BytesPrefixed(data)
	return ctx.Trigger(c.down, append([]byte(nil), w.Bytes()...))
}

func (c *Checksum) recv(ctx *core.Context, msg core.Message) error {
	r := wire.NewReader(msg.([]byte))
	want := r.U32()
	inner := r.BytesPrefixed()
	if r.Err() != nil || sum32(inner) != want {
		c.bad.Add(1)
		return nil // drop silently; retransmission repairs it
	}
	return ctx.Trigger(c.up, append([]byte(nil), inner...))
}

// BadFrames reports datagrams dropped for checksum mismatch.
func (c *Checksum) BadFrames() uint64 { return c.bad.Load() }

// WireOut is the egress microprotocol: frames to the peer node.
type WireOut struct {
	mp   *core.Microprotocol
	node transport.Endpoint
	peer transport.NodeID

	hSend *core.Handler
}

func newWireOut(node transport.Endpoint, peer transport.NodeID) *WireOut {
	w := &WireOut{
		mp:   core.NewMicroprotocol("wire"),
		node: node,
		peer: peer,
	}
	w.hSend = w.mp.AddHandler("send", func(_ *core.Context, msg core.Message) error {
		w.node.Send(w.peer, msg.([]byte))
		return nil
	})
	return w
}
