package ctp

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/wire"
)

// layerHarness drives one layer in isolation, capturing what it sends
// down and what it releases up.
type layerHarness struct {
	s      *core.Stack
	spec   *core.Spec
	evDown *core.EventType
	evUp   *core.EventType
	down   [][]byte
	up     [][]byte
}

// newLayerHarness wires construct(down, up) into a capture stack.
func newLayerHarness(t *testing.T, construct func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler)) (*layerHarness, *core.EventType, *core.EventType) {
	t.Helper()
	h := &layerHarness{
		s:      core.NewStack(cc.NewVCABasic()),
		evDown: core.NewEventType("down"),
		evUp:   core.NewEventType("up"),
	}
	capture := core.NewMicroprotocol("capture")
	hDown := capture.AddHandler("down", func(_ *core.Context, msg core.Message) error {
		h.down = append(h.down, append([]byte(nil), msg.([]byte)...))
		return nil
	})
	hUp := capture.AddHandler("up", func(_ *core.Context, msg core.Message) error {
		h.up = append(h.up, append([]byte(nil), msg.([]byte)...))
		return nil
	})
	mp, hSend, hRecv := construct(h.evDown, h.evUp)
	h.s.Register(mp, capture)
	h.s.Bind(h.evDown, hDown)
	h.s.Bind(h.evUp, hUp)
	evSend := core.NewEventType("send")
	evRecv := core.NewEventType("recv")
	h.s.Bind(evSend, hSend)
	h.s.Bind(evRecv, hRecv)
	h.spec = core.Access(mp, capture)
	return h, evSend, evRecv
}

func (h *layerHarness) external(t *testing.T, ev *core.EventType, msg []byte) {
	t.Helper()
	if err := h.s.External(h.spec, ev, msg); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentSplitsAtMSS(t *testing.T) {
	var seg *Segment
	h, evSend, evRecv := newLayerHarness(t, func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler) {
		seg = newSegment(4, down, up)
		return seg.mp, seg.hSend, seg.hRecv
	})
	h.external(t, evSend, []byte("0123456789")) // 10 bytes, MSS 4 → 3 frags
	if len(h.down) != 3 {
		t.Fatalf("fragments = %d, want 3", len(h.down))
	}
	// Feed them back (out of order) and expect one reassembled message.
	h.external(t, evRecv, h.down[2])
	h.external(t, evRecv, h.down[0])
	if len(h.up) != 0 {
		t.Fatal("delivered before reassembly complete")
	}
	h.external(t, evRecv, h.down[1])
	if len(h.up) != 1 || string(h.up[0]) != "0123456789" {
		t.Fatalf("reassembled = %q", h.up)
	}
	// Duplicate fragments after delivery start a fresh partial but never
	// complete; nothing more is delivered.
	h.external(t, evRecv, h.down[1])
	if len(h.up) != 1 {
		t.Fatal("duplicate fragment re-delivered")
	}
}

func TestSegmentSingleFragmentFastPath(t *testing.T) {
	var seg *Segment
	h, evSend, evRecv := newLayerHarness(t, func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler) {
		seg = newSegment(1024, down, up)
		return seg.mp, seg.hSend, seg.hRecv
	})
	h.external(t, evSend, []byte("small"))
	if len(h.down) != 1 {
		t.Fatalf("fragments = %d", len(h.down))
	}
	h.external(t, evRecv, h.down[0])
	if len(h.up) != 1 || string(h.up[0]) != "small" {
		t.Fatalf("up = %q", h.up)
	}
}

func TestSegmentMalformedDropped(t *testing.T) {
	var seg *Segment
	h, _, evRecv := newLayerHarness(t, func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler) {
		seg = newSegment(4, down, up)
		return seg.mp, seg.hSend, seg.hRecv
	})
	// idx ≥ cnt is malformed and must be dropped without error.
	w := wire.NewWriter(16)
	w.UVarint(1)
	w.U16(5)
	w.U16(2)
	w.BytesPrefixed([]byte("x"))
	h.external(t, evRecv, w.Bytes())
	if len(h.up) != 0 {
		t.Fatal("malformed fragment delivered")
	}
}

func TestOrderReleasesInSequence(t *testing.T) {
	var ord *Order
	h, evSend, evRecv := newLayerHarness(t, func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler) {
		ord = newOrder(down, up)
		return ord.mp, ord.hSend, ord.hRecv
	})
	for _, m := range []string{"a", "b", "c"} {
		h.external(t, evSend, []byte(m))
	}
	if len(h.down) != 3 {
		t.Fatalf("down = %d", len(h.down))
	}
	// Deliver 3rd, then 1st, then 2nd: release order must be a, b, c.
	h.external(t, evRecv, h.down[2])
	if len(h.up) != 0 {
		t.Fatal("released out of order")
	}
	h.external(t, evRecv, h.down[0])
	if len(h.up) != 1 || string(h.up[0]) != "a" {
		t.Fatalf("up = %q", h.up)
	}
	h.external(t, evRecv, h.down[1])
	if len(h.up) != 3 || string(h.up[1]) != "b" || string(h.up[2]) != "c" {
		t.Fatalf("up = %q", h.up)
	}
	// Duplicates of released frames are dropped.
	h.external(t, evRecv, h.down[0])
	if len(h.up) != 3 {
		t.Fatal("duplicate released twice")
	}
}

func TestARQAcksDedupsAndRetransmits(t *testing.T) {
	var arq *ARQ
	h, evSend, evRecv := newLayerHarness(t, func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler) {
		arq = newARQ(10*time.Millisecond, 8, 0, 1, down, up)
		return arq.mp, arq.hSend, arq.hRecv
	})
	evTick := core.NewEventType("tick")
	h.s.Bind(evTick, arq.hRetransmit)

	h.external(t, evSend, []byte("payload"))
	if len(h.down) != 1 {
		t.Fatalf("down = %d", len(h.down))
	}
	dataFrame := h.down[0]

	// Receiving the data frame acks it and releases it upward, once.
	h.external(t, evRecv, dataFrame)
	if len(h.up) != 1 || string(h.up[0]) != "payload" {
		t.Fatalf("up = %q", h.up)
	}
	if len(h.down) != 2 { // the ack went down
		t.Fatalf("down = %d, want data+ack", len(h.down))
	}
	ackFrame := h.down[1]
	if ackFrame[0] != arqAck {
		t.Fatal("second down frame is not an ack")
	}
	// A duplicate data frame is re-acked but not re-delivered.
	h.external(t, evRecv, dataFrame)
	if len(h.up) != 1 {
		t.Fatal("duplicate delivered")
	}
	if len(h.down) != 3 {
		t.Fatal("duplicate not re-acked")
	}
	// Unacked frames retransmit after the RTO; acked ones don't.
	time.Sleep(15 * time.Millisecond)
	h.external(t, evTick, nil)
	if len(h.down) != 4 || !bytes.Equal(h.down[3], dataFrame) {
		t.Fatalf("retransmission missing: down = %d", len(h.down))
	}
	h.external(t, evRecv, ackFrame) // our own ack comes back: sender side clears
	time.Sleep(15 * time.Millisecond)
	h.external(t, evTick, nil)
	if len(h.down) != 4 {
		t.Fatal("acked frame still retransmitting")
	}
	if arq.Retransmits() != 1 {
		t.Fatalf("retransmits = %d", arq.Retransmits())
	}
}

func TestARQBackoffSpacesRetransmissions(t *testing.T) {
	var arq *ARQ
	h, evSend, _ := newLayerHarness(t, func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler) {
		arq = newARQ(30*time.Millisecond, 8, 0, 1, down, up)
		return arq.mp, arq.hSend, arq.hRecv
	})
	evTick := core.NewEventType("tick")
	h.s.Bind(evTick, arq.hRetransmit)

	h.external(t, evSend, []byte("x"))
	time.Sleep(35 * time.Millisecond)
	h.external(t, evTick, nil)
	if arq.Retransmits() != 1 {
		t.Fatalf("retransmits = %d, want 1", arq.Retransmits())
	}
	// The frame's interval has backed off to ≥ 2×30ms×0.75 = 45ms: a tick
	// only ~30ms after the first retransmission must not fire again.
	time.Sleep(30 * time.Millisecond)
	h.external(t, evTick, nil)
	if got := arq.Retransmits(); got != 1 {
		t.Fatalf("retransmitted again before the backed-off interval: %d", got)
	}
}

func TestARQMaxRetriesSurfacesConnFailure(t *testing.T) {
	var arq *ARQ
	h, evSend, _ := newLayerHarness(t, func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler) {
		arq = newARQ(time.Millisecond, 8, 2, 1, down, up)
		return arq.mp, arq.hSend, arq.hRecv
	})
	evTick := core.NewEventType("tick")
	h.s.Bind(evTick, arq.hRetransmit)

	h.external(t, evSend, []byte("doomed"))
	var tickErr error
	for i := 0; i < 10 && tickErr == nil; i++ {
		time.Sleep(15 * time.Millisecond) // past the 8×1ms backoff cap
		tickErr = h.s.External(h.spec, evTick, nil)
	}
	var cf *ConnFailedError
	if !errors.As(tickErr, &cf) {
		t.Fatalf("tick error = %v, want *ConnFailedError", tickErr)
	}
	if cf.Seq != 1 || cf.Retries != 2 {
		t.Fatalf("failure = %+v", cf)
	}
	fails := arq.Failures()
	if len(fails) != 1 || fails[0].Seq != 1 {
		t.Fatalf("Failures() = %+v", fails)
	}
	// The frame is abandoned: further ticks neither retransmit nor re-fail.
	before := arq.Retransmits()
	time.Sleep(15 * time.Millisecond)
	h.external(t, evTick, nil)
	if arq.Retransmits() != before || len(arq.Failures()) != 1 {
		t.Fatal("abandoned frame still active")
	}
	if len(h.down) != 3 { // original + 2 retransmissions
		t.Fatalf("down = %d frames, want 3", len(h.down))
	}
}

func TestARQWindowQueues(t *testing.T) {
	var arq *ARQ
	h, evSend, evRecv := newLayerHarness(t, func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler) {
		arq = newARQ(time.Hour, 2, 0, 1, down, up)
		return arq.mp, arq.hSend, arq.hRecv
	})
	for i := 0; i < 5; i++ {
		h.external(t, evSend, []byte{byte(i)})
	}
	if len(h.down) != 2 {
		t.Fatalf("transmitted %d, window is 2", len(h.down))
	}
	// Ack the first: one queued frame flows.
	w := wire.NewWriter(9)
	w.U8(arqAck)
	w.U64(1)
	h.external(t, evRecv, w.Bytes())
	if len(h.down) != 3 {
		t.Fatalf("after ack: down = %d", len(h.down))
	}
}

func TestChecksumRoundTripAndReject(t *testing.T) {
	var sum *Checksum
	h, evSend, evRecv := newLayerHarness(t, func(down, up *core.EventType) (*core.Microprotocol, *core.Handler, *core.Handler) {
		sum = newChecksum(down, up)
		return sum.mp, sum.hSend, sum.hRecv
	})
	h.external(t, evSend, []byte("guarded"))
	if len(h.down) != 1 {
		t.Fatal("nothing sent")
	}
	frame := append([]byte(nil), h.down[0]...)
	h.external(t, evRecv, frame)
	if len(h.up) != 1 || string(h.up[0]) != "guarded" {
		t.Fatalf("up = %q", h.up)
	}
	// Flip a byte: the frame must be dropped and counted.
	bad := append([]byte(nil), h.down[0]...)
	bad[len(bad)-1] ^= 0xFF
	h.external(t, evRecv, bad)
	if len(h.up) != 1 {
		t.Fatal("corrupted frame delivered")
	}
	if sum.BadFrames() != 1 {
		t.Fatalf("bad frames = %d", sum.BadFrames())
	}
	// Truncated garbage is also just dropped.
	h.external(t, evRecv, []byte{1, 2})
	if sum.BadFrames() != 2 {
		t.Fatalf("bad frames = %d", sum.BadFrames())
	}
}
