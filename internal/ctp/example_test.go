package ctp_test

import (
	"fmt"
	"time"

	"repro/internal/ctp"
	"repro/internal/simnet"
)

// A reliable, ordered, checksummed transport connection between two
// simulated nodes.
func ExampleEndpoint() {
	net := simnet.New(simnet.Config{Nodes: 2})
	defer net.Close()

	delivered := make(chan string, 1)
	mk := func(id, peer simnet.NodeID, deliver func([]byte)) *ctp.Endpoint {
		e, err := ctp.NewEndpoint(ctp.Config{
			Net: net, ID: id, Peer: peer,
			Reliable: true, Ordered: true, Checksummed: true,
			Deliver: deliver,
		})
		if err != nil {
			panic(err)
		}
		e.Start()
		return e
	}
	a := mk(0, 1, nil)
	b := mk(1, 0, func(msg []byte) { delivered <- string(msg) })
	defer a.Stop()
	defer b.Stop()

	if err := a.Send([]byte("over the wire")); err != nil {
		fmt.Println(err)
		return
	}
	select {
	case msg := <-delivered:
		fmt.Println(msg)
	case <-time.After(5 * time.Second):
		fmt.Println("timeout")
	}
	// Output: over the wire
}
