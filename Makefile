# GO-SAMOA — reproduction of "SAMOA: Framework for Synchronisation
# Augmented Microprotocol Approach" (IPDPS 2004). Stdlib-only Go.

GO ?= go

.PHONY: all build vet test race bench eval eval-quick fuzz examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (slower; what CI should run).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The evaluation tables of EXPERIMENTS.md.
eval:
	$(GO) run ./cmd/samoa-bench

eval-quick:
	$(GO) run ./cmd/samoa-bench -quick

# Short fuzzing passes over the decode paths.
fuzz:
	$(GO) test ./internal/wire -fuzz FuzzReaderNeverPanics -fuzztime 20s
	$(GO) test ./internal/gc -fuzz FuzzDecodeMessages -fuzztime 20s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/viewchange
	$(GO) run ./examples/rollback
	$(GO) run ./examples/transport
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/groupcomm

clean:
	$(GO) clean ./...
