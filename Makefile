# GO-SAMOA — reproduction of "SAMOA: Framework for Synchronisation
# Augmented Microprotocol Approach" (IPDPS 2004). Stdlib-only Go.

GO ?= go

.PHONY: all build vet samoa-vet test race race-contend socket-tests node-demo bench bench-core eval eval-quick eval-json fuzz fuzz-smoke explore explore-deep chaos chaos-deep chaos-swap chaos-swap-deep chaos-net chaos-net-deep examples clean

all: build vet samoa-vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static microprotocol- and concurrency-contract checking (cmd/samoa-vet,
# DESIGN.md §9, §14): footprint / readonly / nestediso / blocking /
# routecycle / lockorder / atomics / ignores over the repo's own code.
# Zero findings is the merge bar; deliberate exceptions carry a
# //samoa:ignore <check> — rationale, and the ignores check audits those.
samoa-vet:
	$(GO) run ./cmd/samoa-vet ./internal/... ./examples/... ./cmd/...

test:
	$(GO) test ./...

# Full suite under the race detector (slower; what CI should run).
race:
	$(GO) test -race ./...

# Short-form contention suite (DESIGN.md §11) under the race detector:
# the sharded-admission race/differential tests plus one timed pass of
# each Contention* benchmark shape. CI runs this on every push.
race-contend:
	$(GO) test -race -run 'Sharded|Differential|ExploreReachesFastPath' ./internal/cc -count=1
	$(GO) test -race -run '^$$' -bench 'Contention' -benchtime 200x .

# Real-socket substrate (DESIGN.md §12) under the race detector: the
# backend-agnostic transport conformance suite against simnet AND udpnet,
# the udpnet framing/crash/restart tests, the kvstore cluster over real
# loopback sockets, and the 3-process samoa-node integration test.
# Tests skip (with a reason) where loopback UDP is unavailable.
socket-tests:
	$(GO) test -race -count=1 ./internal/transport/... ./cmd/samoa-node
	$(GO) test -race -count=1 -run UDPCluster ./internal/kvstore

# 3-process replicated-KV demo on loopback: boots three samoa-node
# processes on fixed ports and drives them with the built-in client.
node-demo:
	sh scripts/node-demo.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Core/cc hot-path microbenchmarks only, repeated for stable comparisons:
#   make bench-core > old.txt; ...change...; make bench-core > new.txt
#   benchstat old.txt new.txt
bench-core:
	$(GO) test -run '^$$' -bench 'TriggerSealed|SpawnComplete|ContentionDisjoint' -count=10 -benchmem .

# The evaluation tables of EXPERIMENTS.md.
eval:
	$(GO) run ./cmd/samoa-bench

eval-quick:
	$(GO) run ./cmd/samoa-bench -quick

# Machine-readable results: one BENCH_E<k>.json per experiment.
eval-json:
	$(GO) run ./cmd/samoa-bench -json

# Short fuzzing passes over the decode paths.
fuzz:
	$(GO) test ./internal/wire -fuzz FuzzReaderNeverPanics -fuzztime 20s
	$(GO) test ./internal/gc -fuzz FuzzDecodeMessages -fuzztime 20s

# What CI runs on every push: 30 seconds over every fuzz target,
# including the trace checker vs its brute-force serial-orders oracle.
fuzz-smoke:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzReaderNeverPanics -fuzztime 30s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzRoundTrip -fuzztime 30s
	$(GO) test ./internal/gc -run '^$$' -fuzz FuzzDecodeMessages -fuzztime 30s
	$(GO) test ./internal/gc -run '^$$' -fuzz FuzzSiteSurvivesGarbageDatagrams -fuzztime 30s
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzChecker -fuzztime 30s
	$(GO) test ./internal/transport/udpnet -run '^$$' -fuzz FuzzFrameDecode -fuzztime 30s

# Deterministic schedule exploration (internal/sched). `explore` is the
# quick pass: random walk + PCT + shallow DFS over every isolating
# controller, plus the None negative control. `explore-deep` is the
# nightly-CI search: bounded DFS with a much larger depth and run budget.
explore:
	$(GO) test ./internal/cctest -run 'TestExplore' -v

explore-deep:
	EXPLORE_DEEP=1 $(GO) test ./internal/cctest -run TestExploreDeep -v -timeout 30m

# Chaos-injection harness (internal/chaos, DESIGN.md §10): randomized
# panics, delays and deadlines against every isolating controller, then
# probe for wedges, leaked version slots and isolation violations.
# `chaos` is the per-push smoke run; `chaos-deep` sweeps many more seeds.
# Reproduce one failure with CHAOS_SEED=<n> make chaos.
chaos:
	$(GO) test ./internal/chaos -run TestChaos -count=1 -v

chaos-deep:
	CHAOS_DEEP=1 $(GO) test ./internal/chaos -run TestChaos -count=1 -v -timeout 30m

# Swap storms (internal/chaos swap.go, DESIGN.md §15): live
# reconfigurations raced against in-flight computations, injected faults
# and cancellations on every swap-safe controller, checked against the
# epoch-drain ledger (every swap commits, superseded epochs retire with
# balanced lifecycles, no dispatch into dead epochs, zero acked-write
# loss across the version-chain handoff). `chaos-swap` is the per-push
# 10-seed battery; `chaos-swap-deep` sweeps 40 seeds under -race.
# Reproduce one failure with CHAOS_SEED=<n> make chaos-swap.
chaos-swap:
	$(GO) test ./internal/chaos -run TestSwapStorm -count=1 -v

chaos-swap-deep:
	CHAOS_DEEP=1 $(GO) test -race ./internal/chaos -run TestSwapStorm -count=1 -v -timeout 30m

# Distributed chaos (internal/chaos dchaos, DESIGN.md §13): seeded storms
# of transport crash/restarts, majority-preserving partitions and message
# chaos over 5-site replicated clusters, on the deterministic simulator
# AND real UDP sockets, checked against distributed invariants (post-heal
# convergence, no acked-write loss, no split-brain, wedge probes, clean
# drain). `chaos-net` is the per-push smoke run (3 seeds per backend);
# `chaos-net-deep` sweeps the 20-seed acceptance battery under -race.
# Reproduce one failure with CHAOS_SEED=<n> make chaos-net.
chaos-net:
	$(GO) test ./internal/chaos -run TestDistributedStorm -count=1 -v

chaos-net-deep:
	CHAOS_DEEP=1 $(GO) test -race ./internal/chaos -run TestDistributedStorm -count=1 -v -timeout 30m

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/viewchange
	$(GO) run ./examples/rollback
	$(GO) run ./examples/transport
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/groupcomm

clean:
	$(GO) clean ./...
