# GO-SAMOA — reproduction of "SAMOA: Framework for Synchronisation
# Augmented Microprotocol Approach" (IPDPS 2004). Stdlib-only Go.

GO ?= go

.PHONY: all build vet test race bench bench-core eval eval-quick eval-json fuzz examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (slower; what CI should run).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Core/cc hot-path microbenchmarks only, repeated for stable comparisons:
#   make bench-core > old.txt; ...change...; make bench-core > new.txt
#   benchstat old.txt new.txt
bench-core:
	$(GO) test -run '^$$' -bench 'TriggerSealed|SpawnComplete|ContentionDisjoint' -count=10 -benchmem .

# The evaluation tables of EXPERIMENTS.md.
eval:
	$(GO) run ./cmd/samoa-bench

eval-quick:
	$(GO) run ./cmd/samoa-bench -quick

# Machine-readable results: one BENCH_E<k>.json per experiment.
eval-json:
	$(GO) run ./cmd/samoa-bench -json

# Short fuzzing passes over the decode paths.
fuzz:
	$(GO) test ./internal/wire -fuzz FuzzReaderNeverPanics -fuzztime 20s
	$(GO) test ./internal/gc -fuzz FuzzDecodeMessages -fuzztime 20s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/viewchange
	$(GO) run ./examples/rollback
	$(GO) run ./examples/transport
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/groupcomm

clean:
	$(GO) clean ./...
