#!/bin/sh
# node-demo: boot a 3-process samoa-node cluster on loopback, drive the
# replicated KV store through each node's HTTP API with the built-in
# client, then shut everything down. `make node-demo` runs this.
set -eu

PEERS=127.0.0.1:7841,127.0.0.1:7842,127.0.0.1:7843
HTTP0=127.0.0.1:7851 HTTP1=127.0.0.1:7852 HTTP2=127.0.0.1:7853
BIN=$(mktemp -d)/samoa-node

go build -o "$BIN" ./cmd/samoa-node

cleanup() {
    kill "$P0" "$P1" "$P2" 2>/dev/null || true
    wait "$P0" "$P1" "$P2" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT INT TERM

"$BIN" -id 0 -peers "$PEERS" -http "$HTTP0" & P0=$!
"$BIN" -id 1 -peers "$PEERS" -http "$HTTP1" & P1=$!
"$BIN" -id 2 -peers "$PEERS" -http "$HTTP2" & P2=$!

# Wait until every HTTP front-end answers.
for addr in "$HTTP0" "$HTTP1" "$HTTP2"; do
    i=0
    until "$BIN" -server "$addr" stats >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "node at $addr never came up" >&2; exit 1; }
        sleep 0.1
    done
done

echo "== put via node 0, read via nodes 1 and 2 (total-order replication)"
"$BIN" -server "$HTTP0" put greeting hello
"$BIN" -server "$HTTP1" get greeting
"$BIN" -server "$HTTP2" get greeting

echo "== compare-and-swap via node 2, read back via node 0"
"$BIN" -server "$HTTP2" cas greeting hello goodbye
"$BIN" -server "$HTTP0" get greeting

echo "== per-node status"
for addr in "$HTTP0" "$HTTP1" "$HTTP2"; do
    "$BIN" -server "$addr" stats
done

echo "== demo OK"
